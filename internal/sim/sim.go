// Package sim assembles complete simulated systems — workload, core, memory
// hierarchy, prefetchers, throttling controllers — and runs them to produce
// the metrics the paper reports: IPC, BPKI (bus accesses per thousand
// retired instructions), per-prefetcher accuracy and coverage, and
// multi-core weighted/harmonic speedups.
//
// # Lifecycle
//
// A run is described by a Spec — a declarative list of registered component
// kinds (see internal/sim/registry) plus spec-level inputs — and workload
// Params (input scale and seed). RunSingleSpec builds the whole stack —
// workload trace, caches, DRAM controller, prefetchers, controllers —
// executes it to completion, and returns a Result with the end-of-run
// metrics. RunMultiSpec does the same for one benchmark per core over a
// shared DRAM controller and additionally runs each benchmark alone to
// normalize the weighted and harmonic speedups in MultiResult.
//
// Setup is the legacy flag-bag form of a configuration, kept as a thin
// constructor over Spec (see Setup.Spec); the Setup-based runners delegate
// to their Spec counterparts.
//
// Setting Spec.Trace additionally attaches an interval-level telemetry
// recorder; the Result then carries a telemetry.Trace with the per-interval
// time series and the throttle-decision event log (see OBSERVABILITY.md).
// Tracing is observation-only: a traced run's metrics are bit-identical to
// an untraced run of the same Spec.
package sim

import (
	"fmt"

	"ldsprefetch/internal/baselines/fdp"
	"ldsprefetch/internal/core"
	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/dram"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/sim/engine"
	"ldsprefetch/internal/sim/registry"
	"ldsprefetch/internal/telemetry"
	"ldsprefetch/internal/workload"
)

// Setup selects the prefetching configuration of a run in the legacy
// flag-bag form. The zero value is a system with no prefetching; Baseline()
// is the paper's baseline (aggressive stream prefetcher alone). Setup.Spec
// converts to the declarative form everything downstream consumes.
type Setup struct {
	// Name labels the configuration in reports.
	Name string

	// Stream attaches the baseline stream prefetcher.
	Stream bool
	// CDP attaches the content-directed prefetcher; with Hints set it
	// becomes ECDP.
	CDP bool
	// Hints is the compiler-provided hint table (ECDP).
	Hints *core.HintTable
	// Markov attaches the Markov correlation prefetcher baseline.
	Markov bool
	// GHB attaches the G/DC global-history-buffer baseline.
	GHB bool
	// DBP attaches the dependence-based prefetcher baseline.
	DBP bool

	// Throttle enables the paper's coordinated prefetcher throttling.
	Throttle bool
	// FDP enables per-prefetcher feedback-directed throttling (baseline).
	FDP bool
	// PAB enables Gendler-style best-prefetcher-only selection (baseline).
	PAB bool
	// HWFilter gates CDP requests through a Zhuang-Lee pollution filter.
	HWFilter bool
	// HWFilterBits sizes the filter (0 = the paper's 8 KB = 65536 bits).
	HWFilterBits int

	// IdealLDS converts LDS-load misses to hits (Figure 1 oracle).
	IdealLDS bool
	// NoPollution gives prefetches an unbounded side buffer (§2.3 oracle).
	NoPollution bool

	// ProfilePGs collects pointer-group usefulness during the run.
	ProfilePGs bool

	// Trace enables interval-level telemetry: the run's Result carries a
	// telemetry.Trace with the per-interval time series and the
	// throttle-decision event log. Off by default; purely observational.
	Trace bool

	// Thresholds overrides the coordinated-throttling thresholds.
	Thresholds *core.Thresholds
	// FDPThresholds overrides the FDP thresholds.
	FDPThresholds *fdp.Thresholds
	// IntervalLen overrides the feedback interval (L2 evictions).
	IntervalLen int
	// MemCfg / CPUCfg / DRAMCfg override the paper-default hardware
	// configuration (DRAMCfg applies to the shared controller; its
	// RequestBuffer is still scaled by core count when zero).
	MemCfg  *memsys.Config
	CPUCfg  *cpu.Config
	DRAMCfg *dram.Config
	// InitialLevel overrides the starting aggressiveness (default
	// Aggressive, the paper's baseline configuration).
	InitialLevel *prefetch.AggLevel
}

// Baseline returns the paper's baseline system: the aggressive stream
// prefetcher alone.
func Baseline() Setup { return Setup{Name: "stream", Stream: true} }

// Result is the outcome of one single-core run.
type Result struct {
	Benchmark string
	Setup     string

	Cycles  int64
	Retired int64
	IPC     float64

	// BusTransfers is the number of block transfers on the core-memory bus
	// attributable to this run (fills + writebacks); BPKI normalizes per
	// 1000 retired instructions.
	BusTransfers int64
	BPKI         float64

	// Branches and Mispredicts are the speculative core model's branch
	// counts (zero — and omitted from serialized results — under the
	// default interval model, which ignores branch ops).
	Branches    int64 `json:",omitempty"`
	Mispredicts int64 `json:",omitempty"`

	DemandMisses int64
	// Accuracy and Coverage are the all-time per-prefetcher metrics.
	Accuracy [prefetch.NumSources]float64
	Coverage [prefetch.NumSources]float64
	Issued   [prefetch.NumSources]int64
	Used     [prefetch.NumSources]int64

	Mem memsys.Stats

	// PG usefulness (when Setup.ProfilePGs): Figure 10 histogram and the
	// Figure 4 beneficial/harmful split.
	PGHist       [4]int
	PGBeneficial int
	PGHarmful    int

	// Trace is the interval-level telemetry (when Setup.Trace); nil
	// otherwise.
	Trace *telemetry.Trace
}

// system is one assembled core + memory stack, ready to run.
type system struct {
	bench string
	ms    *memsys.MemSys
	core  cpu.Model
	pgs   map[prefetch.PGKey]*pgCount
	trace *telemetry.Trace
}

type pgCount struct{ useful, useless int64 }

func blockShift(n int) uint {
	s := uint(0)
	for 1<<s != n {
		s++
	}
	return s
}

// assemble builds one core's full stack for benchmark bench, issuing memory
// requests through ctrl on a cores-wide machine. It is a loop over the
// spec's components: control policies are constructed first, then each
// prefetcher is built through its registry factory, attached, and offered to
// every policy, and finally the policies install themselves — all in spec
// order.
func assemble(bench string, p workload.Params, sp Spec, ctrl *dram.Controller, cores int) (*system, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	mcfg := memsys.DefaultConfig()
	if sp.MemCfg != nil {
		mcfg = *sp.MemCfg
	}
	if mcfg.Cores < 1 {
		// The real machine width, for the fair-share prefetch pacing —
		// memsys must not have to infer it from the request-buffer size
		// (wrong for custom DRAM configs). An explicit MemCfg.Cores wins.
		mcfg.Cores = cores
	}
	if mcfg.BlockSize <= 0 || mcfg.BlockSize&(mcfg.BlockSize-1) != 0 {
		return nil, fmt.Errorf("sim: block size %d is not a positive power of two", mcfg.BlockSize)
	}
	tr, err := workload.BuildShared(bench, p)
	if err != nil {
		return nil, err
	}
	// Label the run by the trace's own name. For generator workloads the two
	// are identical (builders stamp the registered name); for replayed
	// captures (workload "trace:<digest>") the original generator name flows
	// through, so a replayed run's report is byte-identical to the generated
	// run it was captured from.
	bench = tr.Name
	if sp.IntervalLen > 0 {
		mcfg.IntervalLen = sp.IntervalLen
	}
	mcfg.IdealLDS = sp.IdealLDS
	mcfg.NoPollution = sp.NoPollution
	ccfg := cpu.DefaultConfig()
	if sp.CPUCfg != nil {
		ccfg = *sp.CPUCfg
	}

	ms := memsys.New(mcfg, tr.Mem, ctrl)
	shift := blockShift(mcfg.BlockSize)
	level := prefetch.Aggressive
	if sp.InitialLevel != nil {
		level = sp.InitialLevel.Clamp()
	}

	// Telemetry. The recorder is installed on the feedback hook before any
	// throttling controller, so each interval record captures the smoothed
	// counters exactly as the controllers are about to see them.
	var trc *telemetry.Trace
	var rec *telemetry.Recorder
	levels := make(map[prefetch.Source]prefetch.Throttleable)
	if sp.Trace {
		trc = &telemetry.Trace{Benchmark: bench, Setup: sp.Name}
		rec = telemetry.NewRecorder(trc, ms.Feedback())
		rec.Install()
	}

	env := &registry.BuildEnv{
		MS:         ms,
		BlockSize:  mcfg.BlockSize,
		BlockShift: shift,
		Hints:      sp.Hints,
		Trace:      trc,
	}

	// Policies are constructed before any prefetcher attaches (they hook
	// feedback in install order, after the recorder), then offered every
	// prefetcher instance, then installed.
	var ctls []registry.Controller
	for _, comp := range sp.Components {
		pol, ok := registry.LookupPolicy(comp.Kind)
		if !ok {
			continue
		}
		opts, err := registry.DecodeOptions(comp.Kind, comp.Options)
		if err != nil {
			return nil, err // unreachable: Validate decoded these already
		}
		ctls = append(ctls, pol.Build(env, opts))
	}
	for _, comp := range sp.Components {
		pf, ok := registry.LookupPrefetcher(comp.Kind)
		if !ok {
			continue
		}
		opts, err := registry.DecodeOptions(comp.Kind, comp.Options)
		if err != nil {
			return nil, err // unreachable: Validate decoded these already
		}
		inst, err := pf.Build(env, opts)
		if err != nil {
			return nil, err
		}
		ms.Attach(inst.Prefetcher)
		if trc != nil {
			trc.Sources = append(trc.Sources, inst.Source)
		}
		if inst.Throttleable != nil {
			levels[inst.Source] = inst.Throttleable
			inst.Throttleable.SetLevel(level)
		}
		for _, c := range ctls {
			c.Attach(inst)
		}
	}
	for _, c := range ctls {
		c.Install()
	}

	// The core timing model is the third registered component class: nil
	// Spec.Core resolves to the default interval model, so pre-seam specs
	// assemble exactly what they always did.
	coreKind := registry.DefaultCoreKind
	var coreRaw []byte
	if sp.Core != nil {
		coreKind = sp.Core.Kind
		coreRaw = sp.Core.Options
	}
	cm, ok := registry.LookupCore(coreKind)
	if !ok {
		return nil, &SpecError{Spec: sp.Name, Component: coreKind, Err: ErrUnknownComponent,
			Reason: (&registry.UnknownCoreError{Kind: coreKind}).Error()}
	}
	copts, err := registry.DecodeCoreOptions(coreKind, coreRaw)
	if err != nil {
		return nil, err // unreachable: Validate decoded these already
	}
	model, err := cm.Build(&registry.CoreEnv{MS: ms, Trace: tr, CPUCfg: ccfg}, copts)
	if err != nil {
		return nil, err
	}

	sys := &system{bench: bench, ms: ms, core: model, trace: trc}
	if rec != nil {
		// All gauge hooks are pure reads of simulation state: tracing must not
		// perturb the run. Occupancy gauges are separate mirror heaps, so
		// retiring them on query leaves MSHR/prefetch-queue arbitration alone.
		ms.EnableOccupancyGauges()
		c := sys.core
		rec.Retired = func() int64 { return c.Result().Retired }
		rec.BusTransfers = func() int64 { return ctrl.Transfers }
		rec.ReqBuf = ctrl.OutstandingAt
		rec.PFBacklog = ctrl.PrefetchBacklog
		rec.MSHR = ms.MSHROccupancyAt
		rec.PFQueue = ms.PFQueueOccupancyAt
		rec.Level = func(src prefetch.Source) int8 {
			if t, ok := levels[src]; ok {
				return int8(t.Level())
			}
			return -1
		}
	}
	if sp.ProfilePGs {
		sys.pgs = make(map[prefetch.PGKey]*pgCount)
		get := func(pg prefetch.PGKey) *pgCount {
			c := sys.pgs[pg]
			if c == nil {
				c = &pgCount{}
				sys.pgs[pg] = c
			}
			return c
		}
		ms.OnPGUseful = func(pg prefetch.PGKey) { get(pg).useful++ }
		ms.OnPGUseless = func(pg prefetch.PGKey) { get(pg).useless++ }
	}
	return sys, nil
}

// result extracts the metrics from a finished system. busTransfers is the
// share of bus traffic attributed to this run.
func (sys *system) result(setupName string, busTransfers int64) Result {
	cr := sys.core.Result()
	fb := sys.ms.Feedback()
	r := Result{
		Benchmark:    sys.bench,
		Setup:        setupName,
		Cycles:       cr.Cycles,
		Retired:      cr.Retired,
		IPC:          cr.IPC(),
		Branches:     cr.Branches,
		Mispredicts:  cr.Mispredicts,
		BusTransfers: busTransfers,
		DemandMisses: int64(fb.DemandMisses.Raw()),
		Mem:          sys.ms.Stats(),
		Trace:        sys.trace,
	}
	if cr.Retired > 0 {
		r.BPKI = float64(busTransfers) / (float64(cr.Retired) / 1000)
	}
	for src := prefetch.Source(0); src < prefetch.NumSources; src++ {
		r.Accuracy[src] = fb.RawAccuracy(src)
		r.Coverage[src] = fb.RawCoverage(src)
		r.Issued[src] = int64(fb.Sources[src].Issued.Raw())
		r.Used[src] = int64(fb.Sources[src].Used.Raw())
	}
	if sys.pgs != nil {
		//ldslint:ordered commutative histogram bin counts; order-independent
		for _, c := range sys.pgs {
			t := c.useful + c.useless
			if t == 0 {
				continue
			}
			u := float64(c.useful) / float64(t)
			switch {
			case u < 0.25:
				r.PGHist[0]++
			case u < 0.5:
				r.PGHist[1]++
			case u < 0.75:
				r.PGHist[2]++
			default:
				r.PGHist[3]++
			}
			if u > 0.5 {
				r.PGBeneficial++
			} else {
				r.PGHarmful++
			}
		}
	}
	return r
}

func controllerFor(sp Spec, cores int) *dram.Controller {
	cfg := dram.DefaultConfig(cores)
	if sp.DRAMCfg != nil {
		cfg = *sp.DRAMCfg
		if cfg.RequestBuffer == 0 {
			cfg.RequestBuffer = 32 * cores
		}
	}
	return dram.NewController(cfg)
}

// RunSingleSpec builds and runs benchmark bench on a single-core system.
// The core talks to the controller directly — the epoch-barrier engine is a
// multi-core construct and single-core runs take the zero-overhead path
// regardless of Spec.Engine.
func RunSingleSpec(bench string, p workload.Params, sp Spec) (Result, error) {
	ctrl := controllerFor(sp, 1)
	sys, err := assemble(bench, p, sp, ctrl, 1)
	if err != nil {
		return Result{}, err
	}
	for !sys.core.Done() {
		sys.core.Step(1 << 16)
	}
	sys.ms.FlushAccounting()
	return sys.result(sp.Name, ctrl.Transfers), nil
}

// RunSingle is RunSingleSpec for a legacy Setup.
func RunSingle(bench string, p workload.Params, s Setup) (Result, error) {
	return RunSingleSpec(bench, p, s.Spec())
}

// MultiResult is the outcome of a multi-core run.
type MultiResult struct {
	Benchmarks []string
	Setup      string
	// PerCore holds each core's shared-run metrics (BPKI fields are
	// computed against total bus traffic and are meaningful only in
	// aggregate).
	PerCore []Result
	// AloneIPC is each benchmark's IPC running alone on the same
	// configuration (for weighted/harmonic speedup).
	AloneIPC []float64
	// WeightedSpeedup = Σ IPC_shared / IPC_alone (Snavely & Tullsen).
	WeightedSpeedup float64
	// HmeanSpeedup = N / Σ (IPC_alone / IPC_shared) (Luo et al.).
	HmeanSpeedup float64
	// BusTransfers is total traffic; BusPKI normalizes by total kilo-instr.
	BusTransfers int64
	BusPKI       float64
}

// engineEpochCycles is the epoch width of the multi-core execution engine,
// and engineEchoLookahead its cross-traffic collision half-window (see
// internal/sim/engine and dram.Controller.SetEcho). Both are simulator
// semantics — they shape how cross-core contention is resolved — so changing
// either changes multi-core results: bump jobs.SchemaVersion and regenerate
// the multi-core goldens if you do. The lookahead is calibrated near the
// visibility window of the pre-engine shared-controller loop (which advanced
// the laggard core 64 ops at a time, a few hundred cycles of bidirectional
// horizon visibility).
const (
	engineEpochCycles   = 2048
	engineEchoLookahead = 512
)

// RunSharedSpec runs the given benchmarks concurrently, one per core, on a
// shared DRAM controller (private L1/L2 per core, as in the paper's
// multi-core configuration), under the epoch-barrier execution engine
// (internal/sim/engine; Spec.Engine selects serial or parallel stepping,
// with byte-identical reports). The speedup-normalization fields (AloneIPC,
// WeightedSpeedup, HmeanSpeedup) are left zero; run each benchmark alone
// with RunAloneSpec and call Normalize to fill them. Job schedulers use this
// decomposition to cache and share alone runs across mixes.
func RunSharedSpec(benches []string, p workload.Params, sp Spec) (MultiResult, error) {
	n := len(benches)
	master := controllerFor(sp, n)
	systems := make([]*system, n)
	shadows := make([]*dram.Controller, n)
	cores := make([]engine.Core, n)
	for i, b := range benches {
		// Each core runs against a private shadow controller that logs its
		// requests; the engine rebases shadows on the master at every epoch
		// boundary and replays the logs onto it at the barrier in
		// (core-index, program-order) arbitration order. The master holds
		// the one canonical interleaving — identical under both engines.
		shadow := dram.NewController(master.Config())
		shadow.StartLog()
		sys, err := assemble(b, p, sp, shadow, n)
		if err != nil {
			return MultiResult{}, err
		}
		systems[i] = sys
		shadows[i] = shadow
		cores[i] = sys.core
	}
	engine.Run(cores, shadows, master, engine.Config{
		EpochCycles:   engineEpochCycles,
		EchoLookahead: engineEchoLookahead,
		Parallel:      sp.Engine == EngineParallel,
	})

	res := MultiResult{Benchmarks: benches, Setup: sp.Name, BusTransfers: master.Transfers}
	var totalRetired int64
	for _, sys := range systems {
		sys.ms.FlushAccounting()
		r := sys.result(sp.Name, master.Transfers)
		totalRetired += r.Retired
		res.PerCore = append(res.PerCore, r)
	}
	if totalRetired > 0 {
		res.BusPKI = float64(master.Transfers) / (float64(totalRetired) / 1000)
	}
	return res, nil
}

// RunShared is RunSharedSpec for a legacy Setup.
func RunShared(benches []string, p workload.Params, s Setup) (MultiResult, error) {
	return RunSharedSpec(benches, p, s.Spec())
}

// RunAloneSpec runs bench by itself on a memory system sized for a
// cores-core machine — the normalization runs RunMultiSpec uses to compute
// weighted and harmonic speedups. Its result depends only on (bench, p, sp,
// cores), so an alone run is shareable across every mix of the same width
// that includes the benchmark under the same configuration.
func RunAloneSpec(bench string, p workload.Params, sp Spec, cores int) (Result, error) {
	ctrl := controllerFor(sp, cores)
	sys, err := assemble(bench, p, sp, ctrl, cores)
	if err != nil {
		return Result{}, err
	}
	for !sys.core.Done() {
		sys.core.Step(1 << 16)
	}
	sys.ms.FlushAccounting()
	return sys.result(sp.Name, ctrl.Transfers), nil
}

// RunAlone is RunAloneSpec for a legacy Setup.
func RunAlone(bench string, p workload.Params, s Setup, cores int) (Result, error) {
	return RunAloneSpec(bench, p, s.Spec(), cores)
}

// Normalize fills the speedup metrics from each benchmark's alone-run IPC
// (index-aligned with Benchmarks/PerCore).
func (mr *MultiResult) Normalize(aloneIPC []float64) {
	mr.AloneIPC = aloneIPC
	mr.WeightedSpeedup, mr.HmeanSpeedup = 0, 0
	var hs float64
	for i, r := range mr.PerCore {
		if aloneIPC[i] > 0 {
			mr.WeightedSpeedup += r.IPC / aloneIPC[i]
		}
		if r.IPC > 0 {
			hs += aloneIPC[i] / r.IPC
		}
	}
	if hs > 0 {
		mr.HmeanSpeedup = float64(len(mr.PerCore)) / hs
	}
}

// RunMultiSpec runs the given benchmarks concurrently, one per core, on a
// shared DRAM controller, then runs each benchmark alone on the same
// configuration to normalize the speedup metrics. It is RunSharedSpec +
// RunAloneSpec + Normalize in one call.
func RunMultiSpec(benches []string, p workload.Params, sp Spec) (MultiResult, error) {
	res, err := RunSharedSpec(benches, p, sp)
	if err != nil {
		return MultiResult{}, err
	}
	alone := make([]float64, len(benches))
	for i, b := range benches {
		r, err := RunAloneSpec(b, p, sp, len(benches))
		if err != nil {
			return MultiResult{}, err
		}
		alone[i] = r.IPC
	}
	res.Normalize(alone)
	return res, nil
}

// RunMulti is RunMultiSpec for a legacy Setup.
func RunMulti(benches []string, p workload.Params, s Setup) (MultiResult, error) {
	return RunMultiSpec(benches, p, s.Spec())
}
