// Package engine executes the cores of a multi-core mix under an
// epoch-barrier discipline that makes the simulation's outcome independent of
// how the work is scheduled across goroutines.
//
// # The determinism problem
//
// The DRAM controller resolves contention through mutable busy-until state:
// the outcome of a request depends on every request applied before it. Run
// two cores on two goroutines against one controller and the interleaving of
// their requests — and therefore every simulated number downstream — is
// decided by the Go scheduler. Bit-for-bit reproducibility of reports is a
// repo invariant (cache keys, golden tests, resumable sweeps), so that
// nondeterminism is not acceptable.
//
// # The epoch-barrier discipline
//
// Time is sliced into epochs of a fixed cycle width. Within an epoch each
// core runs against a private SHADOW controller rebased on the shared MASTER
// controller's state at the epoch boundary (dram.Controller.CopyStateFrom);
// the shadow logs every request the core issues. At the epoch barrier the
// logs are replayed onto the master in a fixed arbitration order — ascending
// arrival time, ties broken by core index, program order within a core
// (dram.Controller.ReplayMergedFrom) — so the master absorbs exactly one
// canonical request interleaving no matter which goroutine finished first.
//
// Rebasing alone would show a core only traffic strictly in its past, and
// past traffic barely contends in a busy-until model (horizons decay below
// the core's own request times within tens of cycles). So the rebase also
// arms the shadow with an ECHO of every other core's just-replayed epoch
// log, shifted forward by one epoch (dram.Controller.SetEcho): the shadow
// folds those requests in lazily, interleaved with the core's own in
// arrival order, so the core collides with a deterministic prediction of
// the cross-traffic contemporaneous with it — the previous epoch's stream
// replayed at the same addresses, priorities, and relative times. Echoed
// requests are neither logged nor counted; only real requests reach the
// master.
//
// Why a fixed order at the barrier is sufficient: during an epoch a core
// reads and writes only goroutine-confined state (its CPU, caches, memory
// image, and shadow controller — rebasing is the only read of the master,
// and the master and the saved epoch logs are quiescent while core
// goroutines run). The master mutates only at the barrier, on one goroutine,
// in an order that is a pure function of core index and each core's own
// deterministic request stream. By induction over epochs, every epoch starts
// from a deterministic master state and deterministic saved logs, and
// produces deterministic per-core streams, so the whole run is
// deterministic. The serial engine executes the identical operation sequence
// inline — same rebase, same echo, same step, same replay — which is why
// `serial` and `parallel` produce byte-identical reports rather than merely
// similar ones.
//
// What the discipline changes versus a single shared controller: a core
// contends with the other cores' PREVIOUS epoch (their echo) rather than
// with their actual concurrent requests, and the completion times replay
// computes on the master are discarded in favor of the shadow's. The
// prediction error is one epoch of traffic drift; the master still absorbs
// every real request in canonical order and shapes every later epoch.
// EpochCycles trades fidelity against synchronization frequency; it is
// simulator semantics, so changing it changes results (golden tests pin it).
package engine

import (
	"sync"

	"ldsprefetch/internal/dram"
)

// Core is one steppable core of a mix. cpu.Model implementations satisfy it; tests may
// substitute fakes.
type Core interface {
	// Done reports whether the core's trace is fully replayed.
	Done() bool
	// Now returns the core's current issue clock.
	Now() int64
	// StepUntil replays ops until the clock reaches the horizon, returning
	// the number replayed. It must replay nothing when already past the
	// horizon and must make progress when behind it.
	StepUntil(horizon int64) int
}

// Config parameterizes an engine run.
type Config struct {
	// EpochCycles is the epoch width: the cycle budget each core may run
	// ahead of the slowest core before the barrier. Larger epochs
	// synchronize less often but delay cross-core contention visibility
	// further; the value is part of the simulator's semantics.
	EpochCycles int64
	// EchoLookahead is the collision half-window: how many cycles ahead of
	// a core's own request the other cores' echoed traffic is folded in
	// (dram.Controller.SetEcho). Like EpochCycles it is simulator
	// semantics, not a performance knob.
	EchoLookahead int64
	// Parallel runs each epoch's core steps on separate goroutines. The
	// result is byte-identical to the serial schedule by construction.
	Parallel bool
}

// Run drives the cores to completion. cores[i] issues its memory requests
// through shadows[i] (a logging controller, dram.Controller.StartLog);
// master accumulates the canonical interleaving and the authoritative
// transfer counters. Run returns after the final barrier, when every core is
// done and every logged request has been applied to the master.
func Run(cores []Core, shadows []*dram.Controller, master *dram.Controller, cfg Config) {
	if cfg.EpochCycles <= 0 {
		cfg.EpochCycles = 1
	}
	stepped := make([]bool, len(cores))
	// prevLogs[i] is core i's previous-epoch request log, kept after replay
	// to be echoed into the other cores' shadows at the next rebase.
	// prevHorizon anchors the echo's one-epoch time shift.
	prevLogs := make([][]dram.Request, len(cores))
	var prevHorizon int64
	for {
		// Horizon: the slowest live core's clock plus one epoch. Every live
		// core behind it steps; the slowest always progresses, so the run
		// terminates.
		minNow, live := int64(0), false
		for _, c := range cores {
			if c.Done() {
				continue
			}
			if n := c.Now(); !live || n < minNow {
				minNow, live = n, true
			}
		}
		if !live {
			return
		}
		horizon := minNow + cfg.EpochCycles

		for i := range cores {
			stepped[i] = !cores[i].Done() && cores[i].Now() < horizon
		}
		// Rebase on the master, arm the shadow with the other cores'
		// previous-epoch echo, then step — per-core work reading only
		// quiescent shared state (master, prevLogs), so the parallel
		// schedule cannot influence it.
		shift := horizon - prevHorizon
		epoch := func(i int) {
			shadows[i].CopyStateFrom(master)
			others := make([][]dram.Request, 0, len(cores)-1)
			for j := range cores {
				if j != i {
					others = append(others, prevLogs[j])
				}
			}
			shadows[i].SetEcho(others, shift, cfg.EchoLookahead)
			cores[i].StepUntil(horizon)
		}
		if cfg.Parallel {
			var wg sync.WaitGroup
			for i := range cores {
				if !stepped[i] {
					continue
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					epoch(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := range cores {
				if !stepped[i] {
					continue
				}
				epoch(i)
			}
		}

		// Barrier: apply the epoch's logs to the master in the canonical
		// arbitration order — arrival time, core index, program order.
		// Each log is saved first for the next rebase's echo; a core that
		// did not step contributed no contemporaneous traffic (it is
		// stalled inside one long-latency op), so its echo is empty.
		replay := make([]*dram.Controller, 0, len(cores))
		for i := range cores {
			if !stepped[i] {
				prevLogs[i] = prevLogs[i][:0]
				continue
			}
			prevLogs[i] = append(prevLogs[i][:0], shadows[i].Log()...)
			replay = append(replay, shadows[i])
		}
		master.ReplayMergedFrom(replay)
		prevHorizon = horizon
	}
}
