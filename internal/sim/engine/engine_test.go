package engine

import (
	"math/rand"
	"testing"

	"ldsprefetch/internal/dram"
)

// fakeCore issues a scripted request stream through its shadow controller,
// one simulated cycle at a time, honoring the StepUntil contract.
type fakeCore struct {
	sh  *dram.Controller
	evs []dram.Request
	pos int
	now int64
	end int64
}

func (f *fakeCore) Done() bool { return f.now >= f.end }
func (f *fakeCore) Now() int64 { return f.now }

func (f *fakeCore) StepUntil(h int64) int {
	n := 0
	for f.now < h && f.now < f.end {
		for f.pos < len(f.evs) && f.evs[f.pos].At <= f.now {
			e := f.evs[f.pos]
			if e.Writeback {
				f.sh.Writeback(e.Addr, e.At)
			} else {
				f.sh.Access(e.Addr, e.At, e.Demand)
			}
			f.pos++
			n++
		}
		f.now++
	}
	return n
}

func script(seed int64, n int, end int64) []dram.Request {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]dram.Request, 0, n)
	t := int64(0)
	for i := 0; i < n && t < end; i++ {
		t += int64(rng.Intn(50))
		evs = append(evs, dram.Request{
			Addr:   0x1000_0000 + uint32(rng.Intn(128))<<6,
			At:     t,
			Demand: rng.Intn(2) == 0,
		})
	}
	return evs
}

// runMix drives four scripted cores with uneven finishing times through the
// engine and returns the master.
func runMix(parallel bool) *dram.Controller {
	cfg := dram.DefaultConfig(4)
	master := dram.NewController(cfg)
	var cores []Core
	var shadows []*dram.Controller
	for i := 0; i < 4; i++ {
		sh := dram.NewController(cfg)
		sh.StartLog()
		end := int64(20000 * (i + 1)) // staggered completion
		cores = append(cores, &fakeCore{sh: sh, evs: script(int64(i+1), 400, end), end: end})
		shadows = append(shadows, sh)
	}
	Run(cores, shadows, master, Config{EpochCycles: 512, Parallel: parallel})
	return master
}

// TestParallelMatchesSerial pins the engine's core guarantee on synthetic
// cores: the master controller ends in the same state under both schedules.
// (The full-stack byte-identical report test lives in internal/sim.)
func TestParallelMatchesSerial(t *testing.T) {
	ser := runMix(false)
	par := runMix(true)
	if ser.Transfers != par.Transfers || ser.DemandTransfers != par.DemandTransfers || ser.Stalls != par.Stalls {
		t.Fatalf("counters diverge: serial (%d,%d,%d), parallel (%d,%d,%d)",
			ser.Transfers, ser.DemandTransfers, ser.Stalls,
			par.Transfers, par.DemandTransfers, par.Stalls)
	}
	// The busy-until horizons and request buffer must agree too: a probe
	// request resolves identically against both masters.
	probe := func(c *dram.Controller) int64 { return c.Access(0x7fff_0040, 100000, true) }
	if a, b := probe(ser), probe(par); a != b {
		t.Fatalf("probe resolves at %d on serial master, %d on parallel", a, b)
	}
}

// TestAllRequestsReachMaster verifies no logged request is lost at barriers:
// the master's transfer count equals the sum of scripted requests.
func TestAllRequestsReachMaster(t *testing.T) {
	master := runMix(true)
	var want int64
	for i := 0; i < 4; i++ {
		end := int64(20000 * (i + 1))
		want += int64(len(script(int64(i+1), 400, end)))
	}
	if master.Transfers != want {
		t.Fatalf("master absorbed %d transfers, scripts issued %d", master.Transfers, want)
	}
}

// TestTermination pins progress with degenerate epoch widths: even a
// too-small EpochCycles must terminate (the slowest live core always steps).
func TestTermination(t *testing.T) {
	cfg := dram.DefaultConfig(1)
	master := dram.NewController(cfg)
	sh := dram.NewController(cfg)
	sh.StartLog()
	c := &fakeCore{sh: sh, evs: script(9, 50, 5000), end: 5000}
	Run([]Core{c}, []*dram.Controller{sh}, master, Config{EpochCycles: 0, Parallel: false})
	if !c.Done() {
		t.Fatal("engine returned before the core finished")
	}
}
