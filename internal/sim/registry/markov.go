package registry

import (
	"fmt"

	"ldsprefetch/internal/baselines/markov"
	"ldsprefetch/internal/prefetch"
)

// MarkovOptions parameterizes the Markov correlation prefetcher baseline.
type MarkovOptions struct {
	// TableEntries sizes the correlation table (0 = the paper's 1 MB table).
	TableEntries int `json:"table_entries,omitempty"`
}

func init() {
	RegisterPrefetcher(&Prefetcher{
		Kind:         "markov",
		Version:      1,
		Throttleable: true,
		NewOptions:   func() any { return new(MarkovOptions) },
		Validate: func(opts any) error {
			if o := opts.(*MarkovOptions); o.TableEntries < 0 {
				return fmt.Errorf("table_entries must be >= 0, got %d", o.TableEntries)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) (Instance, error) {
			n := opts.(*MarkovOptions).TableEntries
			if n == 0 {
				n = markov.TableEntriesFor1MB
			}
			mk := markov.New(n, env.BlockShift, env.MS)
			return Instance{Prefetcher: mk, Source: prefetch.SrcMarkov,
				Throttleable: mk}, nil
		},
	})
}
