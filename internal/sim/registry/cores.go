package registry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/cpu/ooo"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/trace"
)

// DefaultCoreKind is the core model a spec without an explicit Core
// component runs on. It is deliberately omitted from canonical spec
// encodings so pre-seam cache keys and golden reports are untouched.
const DefaultCoreKind = "interval"

// CoreEnv is the per-run context a core-model factory builds against.
type CoreEnv struct {
	MS     *memsys.MemSys
	Trace  *trace.Trace
	CPUCfg cpu.Config
}

// CoreModel is a registered core timing-model factory — the third component
// class next to prefetchers and policies, selected by sim.Spec.Core.
type CoreModel struct {
	// Kind is the spec name ("interval", "ooo").
	Kind string
	// Version participates in cache keys for non-default cores; bump it
	// whenever the model's simulated behaviour or option semantics change.
	Version int

	// NewOptions allocates the factory's typed options struct at defaults.
	NewOptions func() any
	// Validate checks decoded options (optional).
	Validate func(opts any) error
	// Build constructs the model over env. opts is the struct NewOptions
	// allocated, already decoded and validated.
	Build func(env *CoreEnv, opts any) (cpu.Model, error)
}

var coreModels = map[string]*CoreModel{}

// RegisterCore adds a core-model factory to the catalog. Core kinds share
// the component namespace: a kind may not collide with a prefetcher or
// policy registration.
func RegisterCore(f *CoreModel) {
	checkRegistration(f.Kind, f.NewOptions != nil, f.Build != nil)
	if _, ok := coreModels[f.Kind]; ok {
		panic(fmt.Sprintf("registry: duplicate component kind %q", f.Kind))
	}
	coreModels[f.Kind] = f
}

// LookupCore returns the core-model factory for kind.
func LookupCore(kind string) (*CoreModel, bool) {
	f, ok := coreModels[kind]
	return f, ok
}

// Cores lists the registered core-model kinds, sorted.
func Cores() []string {
	var out []string
	for k := range coreModels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UnknownCoreError reports a spec core whose kind is not registered. The
// core catalog is embedded so the message is actionable as-is (it reaches
// CLI users and the server's HTTP 400 responses verbatim).
type UnknownCoreError struct {
	Kind string
}

func (e *UnknownCoreError) Error() string {
	return fmt.Sprintf("unknown core model %q (known core models: %s)",
		e.Kind, strings.Join(Cores(), ", "))
}

// DecodeCoreOptions decodes a core component's raw JSON options into its
// factory's typed options struct and validates them, under the same rules as
// DecodeOptions (empty/null = defaults, unknown fields are errors).
func DecodeCoreOptions(kind string, raw json.RawMessage) (any, error) {
	f, ok := coreModels[kind]
	if !ok {
		return nil, &UnknownCoreError{Kind: kind}
	}
	return decodeInto(kind, f.NewOptions, f.Validate, raw)
}

// CanonicalCoreOptions returns the deterministic re-encoding of a core
// component's options (decode/validate round-trip, like CanonicalOptions).
func CanonicalCoreOptions(kind string, raw json.RawMessage) (json.RawMessage, error) {
	opts, err := DecodeCoreOptions(kind, raw)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(opts)
	if err != nil {
		panic(fmt.Sprintf("registry: canonical encode %s: %v", kind, err))
	}
	return b, nil
}

// IntervalOptions parameterizes the default dependence-graph core model. It
// has no options: the window and width come from the spec-level CPUCfg,
// which predates the core seam and stays where existing specs put it.
type IntervalOptions struct{}

// OoOOptions aliases the out-of-order model's option struct so callers can
// reference it without importing internal/cpu/ooo.
type OoOOptions = ooo.Options

func init() {
	RegisterCore(&CoreModel{
		Kind:       DefaultCoreKind,
		Version:    1,
		NewOptions: func() any { return new(IntervalOptions) },
		Build: func(env *CoreEnv, opts any) (cpu.Model, error) {
			return cpu.NewInterval(env.CPUCfg, env.MS, env.Trace), nil
		},
	})
	RegisterCore(&CoreModel{
		Kind:       "ooo",
		Version:    1,
		NewOptions: func() any { return new(ooo.Options) },
		Validate: func(opts any) error {
			return opts.(*ooo.Options).Validate()
		},
		Build: func(env *CoreEnv, opts any) (cpu.Model, error) {
			return ooo.New(env.CPUCfg, *opts.(*ooo.Options), env.MS, env.Trace), nil
		},
	})
}
