package registry

import (
	"ldsprefetch/internal/baselines/pab"
)

// PABOptions parameterizes the Gendler-style best-prefetcher-only selection
// baseline. It has no tunables today; the struct anchors the options schema
// so adding one later is not a wire-format change.
type PABOptions struct{}

type pabController struct {
	sel *pab.Selector
}

func (c *pabController) Attach(inst Instance) {
	if inst.Switchable != nil {
		c.sel.Add(inst.Source, inst.Switchable)
	}
}

func (c *pabController) Install() { c.sel.Install() }

func init() {
	RegisterPolicy(&Policy{
		Kind:    "pab",
		Version: 1,
		// Selecting the single best prefetcher needs at least two
		// switchable candidates to choose between.
		MinSwitchable: 2,
		NewOptions:    func() any { return new(PABOptions) },
		Build: func(env *BuildEnv, opts any) Controller {
			return &pabController{sel: pab.NewSelector(env.MS.Feedback())}
		},
	})
}
