package registry

import (
	"fmt"

	"ldsprefetch/internal/baselines/dbp"
	"ldsprefetch/internal/prefetch"
)

// DBPOptions parameterizes the dependence-based prefetcher baseline.
type DBPOptions struct {
	// PPWSize is the potential-producer window size (0 = 128).
	PPWSize int `json:"ppw_size,omitempty"`
	// TableCap caps the correlation table (0 = 256).
	TableCap int `json:"table_cap,omitempty"`
}

func init() {
	RegisterPrefetcher(&Prefetcher{
		Kind:         "dbp",
		Version:      1,
		Throttleable: true,
		NewOptions:   func() any { return new(DBPOptions) },
		Validate: func(opts any) error {
			o := opts.(*DBPOptions)
			if o.PPWSize < 0 {
				return fmt.Errorf("ppw_size must be >= 0, got %d", o.PPWSize)
			}
			if o.TableCap < 0 {
				return fmt.Errorf("table_cap must be >= 0, got %d", o.TableCap)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) (Instance, error) {
			o := opts.(*DBPOptions)
			ppw, tcap := o.PPWSize, o.TableCap
			if ppw == 0 {
				ppw = 128
			}
			if tcap == 0 {
				tcap = 256
			}
			db := dbp.New(ppw, tcap, env.MS)
			return Instance{Prefetcher: db, Source: prefetch.SrcDBP,
				Throttleable: db}, nil
		},
	})
}
