package registry

import (
	"ldsprefetch/internal/core"
)

// ThrottleOptions parameterizes the paper's coordinated prefetcher
// throttling (Section 4, Table 3).
type ThrottleOptions struct {
	// Thresholds overrides the accuracy/coverage decision thresholds
	// (nil = core.DefaultThresholds).
	Thresholds *core.Thresholds `json:"thresholds,omitempty"`
}

// throttleController adapts core.Throttler to the assembly protocol. It
// installs only when at least one throttleable prefetcher attached, matching
// the pre-registry behaviour of a Throttle flag on a prefetcher-less system.
type throttleController struct {
	thr *core.Throttler
	env *BuildEnv
	n   int
}

func (c *throttleController) Attach(inst Instance) {
	if inst.Throttleable != nil {
		c.thr.Add(inst.Source, inst.Throttleable)
		c.n++
	}
}

func (c *throttleController) Install() {
	if c.n == 0 {
		return
	}
	c.thr.Trace = c.env.Trace
	c.thr.Install()
}

func init() {
	RegisterPolicy(&Policy{
		Kind:           "throttle",
		Version:        1,
		ClaimsThrottle: true,
		NewOptions:     func() any { return new(ThrottleOptions) },
		Build: func(env *BuildEnv, opts any) Controller {
			th := core.DefaultThresholds()
			if o := opts.(*ThrottleOptions); o.Thresholds != nil {
				th = *o.Thresholds
			}
			return &throttleController{thr: core.NewThrottler(th, env.MS.Feedback()), env: env}
		},
	})
}
