package registry

import (
	"fmt"

	"ldsprefetch/internal/baselines/ghb"
	"ldsprefetch/internal/prefetch"
)

// GHBOptions parameterizes the G/DC global-history-buffer baseline.
type GHBOptions struct {
	// Entries sizes the history buffer and index table (0 = 1024).
	Entries int `json:"entries,omitempty"`
}

func init() {
	RegisterPrefetcher(&Prefetcher{
		Kind:         "ghb",
		Version:      1,
		Throttleable: true,
		NewOptions:   func() any { return new(GHBOptions) },
		Validate: func(opts any) error {
			if o := opts.(*GHBOptions); o.Entries < 0 {
				return fmt.Errorf("entries must be >= 0, got %d", o.Entries)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) (Instance, error) {
			n := opts.(*GHBOptions).Entries
			if n == 0 {
				n = 1024
			}
			gh := ghb.New(n, env.BlockShift, env.MS)
			return Instance{Prefetcher: gh, Source: prefetch.SrcGHB,
				Throttleable: gh}, nil
		},
	})
}
