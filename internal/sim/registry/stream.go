package registry

import (
	"fmt"

	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/stream"
)

// StreamOptions parameterizes the POWER4-style stream prefetcher.
type StreamOptions struct {
	// Streams is the number of tracked streams (0 = the paper's 32).
	Streams int `json:"streams,omitempty"`
}

func init() {
	RegisterPrefetcher(&Prefetcher{
		Kind:         "stream",
		Version:      1,
		Throttleable: true,
		Switchable:   true,
		NewOptions:   func() any { return new(StreamOptions) },
		Validate: func(opts any) error {
			if o := opts.(*StreamOptions); o.Streams < 0 {
				return fmt.Errorf("streams must be >= 0, got %d", o.Streams)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) (Instance, error) {
			n := opts.(*StreamOptions).Streams
			if n == 0 {
				n = 32
			}
			sp := stream.New(n, env.BlockShift, env.MS)
			return Instance{Prefetcher: sp, Source: prefetch.SrcStream,
				Throttleable: sp, Switchable: sp}, nil
		},
	})
}
