package registry

import (
	"fmt"

	"ldsprefetch/internal/baselines/hwfilter"
	"ldsprefetch/internal/prefetch"
)

// HWFilterOptions parameterizes the Zhuang-Lee hardware pollution filter
// that gates CDP requests.
type HWFilterOptions struct {
	// Bits sizes the filter table (0 = the paper's 8 KB = 65536 bits).
	Bits int `json:"bits,omitempty"`
}

// hwFilterController wires the filter into the memory system's prefetch
// gate and outcome hook at install time. It attaches to no prefetcher: the
// filter keys on the request source, not on prefetcher instances.
type hwFilterController struct {
	env  *BuildEnv
	bits int
}

func (c *hwFilterController) Attach(Instance) {}

func (c *hwFilterController) Install() {
	f := hwfilter.New(c.bits, c.env.BlockShift)
	ms := c.env.MS
	ms.FilterPrefetch = func(r prefetch.Request) bool {
		if r.Src != prefetch.SrcCDP {
			return true
		}
		return f.Allow(r)
	}
	prevOutcome := ms.OnPrefetchOutcome
	ms.OnPrefetchOutcome = func(blk uint32, src prefetch.Source, used bool) {
		if prevOutcome != nil {
			prevOutcome(blk, src, used)
		}
		if src == prefetch.SrcCDP {
			f.Outcome(blk, src, used)
		}
	}
}

func init() {
	RegisterPolicy(&Policy{
		Kind:       "hwfilter",
		Version:    1,
		NewOptions: func() any { return new(HWFilterOptions) },
		Validate: func(opts any) error {
			if o := opts.(*HWFilterOptions); o.Bits < 0 {
				return fmt.Errorf("bits must be >= 0 (0 = the default 65536), got %d", o.Bits)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) Controller {
			bits := opts.(*HWFilterOptions).Bits
			if bits == 0 {
				bits = 8 << 10 * 8
			}
			return &hwFilterController{env: env, bits: bits}
		},
	})
}
