// Package registry is the simulator's component catalog. Every prefetcher
// (stream, cdp, markov, ghb, dbp), every control policy (throttle, fdp,
// pab, hwfilter), and every core timing model (interval, ooo) registers a
// named factory here, with its own typed, versioned options; sim assembles
// a system by walking a declarative spec and looking each component up
// instead of switching on booleans.
//
// Adding a component is one file in this package: define an options struct,
// call RegisterPrefetcher, RegisterPolicy, or RegisterCore from init, and
// write its tests.
// The spec validator, the cache-key encoder, the experiment definitions, the
// CLIs, and the job server all consume the catalog generically — none of
// them enumerate component kinds.
//
// Each factory carries static metadata (Throttleable, Switchable,
// ConsumesHints, ClaimsThrottle, MinSwitchable) so composition rules can be
// checked without constructing a memory system, and a Version that
// participates in cache keys so changing a component's semantics invalidates
// exactly the cached results that used it.
package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ldsprefetch/internal/baselines/pab"
	"ldsprefetch/internal/core"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/telemetry"
)

// BuildEnv is the per-run context factories build against: the assembled
// memory system and the spec-level inputs a component may consume.
type BuildEnv struct {
	MS         *memsys.MemSys
	BlockSize  int
	BlockShift uint
	// Hints is the profiled hint table (nil outside ECDP runs); only
	// factories with ConsumesHints read it.
	Hints *core.HintTable
	// Trace is the run's telemetry sink (nil when tracing is off).
	Trace *telemetry.Trace
}

// Instance is one constructed prefetcher plus its control surfaces. Nil
// Throttleable/Switchable mean the prefetcher does not expose that surface.
type Instance struct {
	Prefetcher   memsys.Prefetcher
	Source       prefetch.Source
	Throttleable prefetch.Throttleable
	Switchable   pab.Switchable
}

// Prefetcher is a registered prefetcher factory.
type Prefetcher struct {
	// Kind is the spec name ("stream", "cdp", ...).
	Kind string
	// Version participates in cache keys; bump it whenever the component's
	// simulated behaviour or option semantics change.
	Version int

	// Static metadata, used by spec validation without building anything.
	Throttleable  bool
	Switchable    bool
	ConsumesHints bool

	// NewOptions allocates the factory's typed options struct at defaults.
	NewOptions func() any
	// Validate checks decoded options (optional).
	Validate func(opts any) error
	// Build constructs the prefetcher against env. opts is the struct
	// NewOptions allocated, already decoded and validated.
	Build func(env *BuildEnv, opts any) (Instance, error)
}

// Controller is an instantiated control policy, mid-assembly: every
// constructed prefetcher is offered to it via Attach (in spec order), then
// Install wires it into the memory system's feedback hooks.
type Controller interface {
	Attach(inst Instance)
	Install()
}

// Policy is a registered control-policy factory.
type Policy struct {
	Kind    string
	Version int

	// ClaimsThrottle marks policies that take ownership of prefetcher
	// aggressiveness levels (throttle, fdp). A spec may contain at most one
	// such policy: two of them would silently fight over the same knob.
	ClaimsThrottle bool
	// MinSwitchable is the minimum number of switchable prefetchers the
	// policy needs to be meaningful (pab: 2). Zero means no requirement.
	MinSwitchable int

	NewOptions func() any
	Validate   func(opts any) error
	Build      func(env *BuildEnv, opts any) Controller
}

// Info is the registration metadata of one component kind, the union of the
// prefetcher and policy metadata with a discriminator.
type Info struct {
	Kind       string
	Version    int
	Prefetcher bool // false: control policy

	// Prefetcher metadata (zero for policies).
	Throttleable  bool
	Switchable    bool
	ConsumesHints bool

	// Policy metadata (zero for prefetchers).
	ClaimsThrottle bool
	MinSwitchable  int
}

var (
	prefetchers = map[string]*Prefetcher{}
	policies    = map[string]*Policy{}
)

// RegisterPrefetcher adds a prefetcher factory to the catalog. It panics on
// a duplicate or malformed registration: factories register from init, so
// any mistake is a programming error caught by the first test run.
func RegisterPrefetcher(f *Prefetcher) {
	checkRegistration(f.Kind, f.NewOptions != nil, f.Build != nil)
	prefetchers[f.Kind] = f
}

// RegisterPolicy adds a control-policy factory to the catalog.
func RegisterPolicy(f *Policy) {
	checkRegistration(f.Kind, f.NewOptions != nil, f.Build != nil)
	policies[f.Kind] = f
}

func checkRegistration(kind string, hasOptions, hasBuild bool) {
	if kind == "" || !hasOptions || !hasBuild {
		panic(fmt.Sprintf("registry: incomplete registration of %q", kind))
	}
	if _, ok := prefetchers[kind]; ok {
		panic(fmt.Sprintf("registry: duplicate component kind %q", kind))
	}
	if _, ok := policies[kind]; ok {
		panic(fmt.Sprintf("registry: duplicate component kind %q", kind))
	}
	if _, ok := coreModels[kind]; ok {
		panic(fmt.Sprintf("registry: duplicate component kind %q", kind))
	}
}

// LookupPrefetcher returns the prefetcher factory for kind.
func LookupPrefetcher(kind string) (*Prefetcher, bool) {
	f, ok := prefetchers[kind]
	return f, ok
}

// LookupPolicy returns the control-policy factory for kind.
func LookupPolicy(kind string) (*Policy, bool) {
	f, ok := policies[kind]
	return f, ok
}

// Lookup returns the metadata of any registered component kind.
func Lookup(kind string) (Info, bool) {
	if f, ok := prefetchers[kind]; ok {
		return Info{Kind: f.Kind, Version: f.Version, Prefetcher: true,
			Throttleable: f.Throttleable, Switchable: f.Switchable,
			ConsumesHints: f.ConsumesHints}, true
	}
	if f, ok := policies[kind]; ok {
		return Info{Kind: f.Kind, Version: f.Version,
			ClaimsThrottle: f.ClaimsThrottle, MinSwitchable: f.MinSwitchable}, true
	}
	return Info{}, false
}

// Prefetchers lists the registered prefetcher kinds, sorted.
func Prefetchers() []string {
	var out []string
	for k := range prefetchers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Policies lists the registered control-policy kinds, sorted.
func Policies() []string {
	var out []string
	for k := range policies {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Catalog lists every registered component kind, sorted — the "known
// components" list validation errors and the server's 400 responses carry.
func Catalog() []string {
	out := append(Prefetchers(), Policies()...)
	sort.Strings(out)
	return out
}

// UnknownComponentError reports a spec component whose kind is not in the
// catalog. The catalog is embedded so the message is actionable as-is.
type UnknownComponentError struct {
	Kind string
}

func (e *UnknownComponentError) Error() string {
	return fmt.Sprintf("unknown component %q (known components: %s)",
		e.Kind, strings.Join(Catalog(), ", "))
}

// options returns kind's NewOptions and Validate regardless of class.
func options(kind string) (func() any, func(any) error, bool) {
	if f, ok := prefetchers[kind]; ok {
		return f.NewOptions, f.Validate, true
	}
	if f, ok := policies[kind]; ok {
		return f.NewOptions, f.Validate, true
	}
	return nil, nil, false
}

// DecodeOptions decodes a component's raw JSON options into its factory's
// typed options struct and validates them. Empty or null raw means factory
// defaults; unknown fields and trailing data are errors, so misspelled
// option names cannot be silently ignored (and cannot leak into cache keys).
func DecodeOptions(kind string, raw json.RawMessage) (any, error) {
	newOptions, validate, ok := options(kind)
	if !ok {
		return nil, &UnknownComponentError{Kind: kind}
	}
	return decodeInto(kind, newOptions, validate, raw)
}

// decodeInto is the shared decode/validate path behind DecodeOptions and
// DecodeCoreOptions.
func decodeInto(kind string, newOptions func() any, validate func(any) error, raw json.RawMessage) (any, error) {
	opts := newOptions()
	if len(raw) > 0 && !bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(opts); err != nil {
			return nil, fmt.Errorf("%s options: %w", kind, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("%s options: trailing data after JSON value", kind)
		}
	}
	if validate != nil {
		if err := validate(opts); err != nil {
			return nil, fmt.Errorf("%s options: %w", kind, err)
		}
	}
	return opts, nil
}

// CanonicalOptions returns the deterministic re-encoding of a component's
// options: the JSON of the typed options struct after a decode/validate
// round-trip. Input formatting, field order, and omitted-vs-explicit
// defaults all normalize to the same bytes, so they cannot split cache keys.
func CanonicalOptions(kind string, raw json.RawMessage) (json.RawMessage, error) {
	opts, err := DecodeOptions(kind, raw)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(opts)
	if err != nil {
		// Options structs are scalar-only by construction; Marshal cannot
		// fail on them.
		panic(fmt.Sprintf("registry: canonical encode %s: %v", kind, err))
	}
	return b, nil
}
