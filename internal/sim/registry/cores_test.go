package registry

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestCoreCatalog(t *testing.T) {
	got := Cores()
	want := []string{"interval", "ooo"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Cores() = %v, want %v", got, want)
	}
	for _, kind := range got {
		f, ok := LookupCore(kind)
		if !ok {
			t.Fatalf("LookupCore(%q) missed a cataloged kind", kind)
		}
		if f.Kind != kind || f.Version < 1 || f.NewOptions == nil || f.Build == nil {
			t.Fatalf("core %q registration incomplete: %+v", kind, f)
		}
	}
	if _, ok := LookupCore("bogus"); ok {
		t.Fatal("LookupCore accepted an unregistered kind")
	}
	if DefaultCoreKind != "interval" {
		t.Fatalf("default core kind %q; goldens and cache keys pin interval", DefaultCoreKind)
	}
}

func TestUnknownCoreErrorCarriesCatalog(t *testing.T) {
	err := &UnknownCoreError{Kind: "quantum"}
	msg := err.Error()
	for _, want := range []string{`"quantum"`, "known core models", "interval", "ooo"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestDecodeCoreOptions(t *testing.T) {
	// Empty and null raw options mean factory defaults.
	for _, raw := range []json.RawMessage{nil, json.RawMessage("null"), json.RawMessage("{}")} {
		opts, err := DecodeCoreOptions("ooo", raw)
		if err != nil {
			t.Fatalf("defaults for raw %q: %v", raw, err)
		}
		if o := opts.(*OoOOptions); *o != (OoOOptions{}) {
			t.Fatalf("raw %q decoded to non-defaults %+v", raw, o)
		}
	}
	opts, err := DecodeCoreOptions("ooo", json.RawMessage(`{"predictor":"gshare","history_bits":14}`))
	if err != nil {
		t.Fatal(err)
	}
	if o := opts.(*OoOOptions); o.Predictor != "gshare" || o.HistoryBits != 14 {
		t.Fatalf("decoded %+v", o)
	}

	// Unknown kinds surface the typed catalog error.
	_, err = DecodeCoreOptions("quantum", nil)
	var unk *UnknownCoreError
	if !errors.As(err, &unk) || unk.Kind != "quantum" {
		t.Fatalf("err = %v, want UnknownCoreError{quantum}", err)
	}

	// Misspelled fields are errors, same contract as prefetcher options.
	if _, err := DecodeCoreOptions("ooo", json.RawMessage(`{"predicter":"tage"}`)); err == nil {
		t.Fatal("unknown option field accepted")
	}
	// The factory Validate runs during decode.
	if _, err := DecodeCoreOptions("ooo", json.RawMessage(`{"predictor":"psychic"}`)); err == nil ||
		!strings.Contains(err.Error(), "psychic") {
		t.Fatalf("invalid predictor: err = %v, want mention of the bad value", err)
	}
}

func TestCanonicalCoreOptionsNormalizes(t *testing.T) {
	a, err := CanonicalCoreOptions("ooo", json.RawMessage(`{ "predictor" : "tage" }`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalCoreOptions("ooo", json.RawMessage(`{"predictor":"tage"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("formatting split the canonical encoding: %s vs %s", a, b)
	}
	// Defaults canonicalize to the empty object (omitempty on every field),
	// so "unset" and "explicitly default" produce identical cache keys.
	c, err := CanonicalCoreOptions("ooo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != "{}" {
		t.Fatalf("default ooo options canonicalize to %s, want {}", c)
	}
}

func TestRegisterCoreSharesComponentNamespace(t *testing.T) {
	cases := []string{"stream", "throttle", "interval"} // prefetcher, policy, core
	for _, kind := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterCore(%q) did not panic on a namespace collision", kind)
				}
			}()
			RegisterCore(&CoreModel{
				Kind:       kind,
				Version:    1,
				NewOptions: func() any { return new(IntervalOptions) },
				Build:      coreModels[DefaultCoreKind].Build,
			})
		}()
	}
}
