package registry

import (
	"errors"
	"strings"
	"testing"
)

// TestCatalogComplete pins the component set this PR ships: the five paper
// prefetchers and the four control policies. Adding a component extends this
// list; removing one is a breaking change to every stored spec.
func TestCatalogComplete(t *testing.T) {
	wantP := []string{"cdp", "dbp", "ghb", "markov", "stream"}
	wantC := []string{"fdp", "hwfilter", "pab", "throttle"}
	if got := Prefetchers(); strings.Join(got, ",") != strings.Join(wantP, ",") {
		t.Fatalf("prefetcher catalog = %v, want %v", got, wantP)
	}
	if got := Policies(); strings.Join(got, ",") != strings.Join(wantC, ",") {
		t.Fatalf("policy catalog = %v, want %v", got, wantC)
	}
	if got, want := len(Catalog()), len(wantP)+len(wantC); got != want {
		t.Fatalf("Catalog() has %d entries, want %d", got, want)
	}
}

func TestLookupMetadata(t *testing.T) {
	for _, kind := range Catalog() {
		info, ok := Lookup(kind)
		if !ok {
			t.Fatalf("Lookup(%q) missed a cataloged kind", kind)
		}
		if info.Kind != kind {
			t.Errorf("Lookup(%q).Kind = %q", kind, info.Kind)
		}
		if info.Version < 1 {
			t.Errorf("%s: version %d; versions start at 1 so cache keys can tell factories apart", kind, info.Version)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("Lookup accepted an unregistered kind")
	}
	// The class-specific lookups partition the catalog.
	for _, kind := range Prefetchers() {
		if _, ok := LookupPolicy(kind); ok {
			t.Errorf("%s is both a prefetcher and a policy", kind)
		}
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate prefetcher kind", func() {
		RegisterPrefetcher(&Prefetcher{Kind: "stream",
			NewOptions: func() any { return new(StreamOptions) },
			Build:      func(*BuildEnv, any) (Instance, error) { return Instance{}, nil }})
	})
	mustPanic("policy shadowing a prefetcher kind", func() {
		RegisterPolicy(&Policy{Kind: "stream",
			NewOptions: func() any { return new(PABOptions) },
			Build:      func(*BuildEnv, any) Controller { return nil }})
	})
	mustPanic("missing NewOptions", func() {
		RegisterPrefetcher(&Prefetcher{Kind: "incomplete",
			Build: func(*BuildEnv, any) (Instance, error) { return Instance{}, nil }})
	})
	mustPanic("empty kind", func() {
		RegisterPolicy(&Policy{Kind: "",
			NewOptions: func() any { return new(PABOptions) },
			Build:      func(*BuildEnv, any) Controller { return nil }})
	})
}

func TestDecodeOptionsDefaults(t *testing.T) {
	for _, raw := range []string{"", "null", " null "} {
		opts, err := DecodeOptions("stream", []byte(raw))
		if err != nil {
			t.Fatalf("DecodeOptions(stream, %q): %v", raw, err)
		}
		if o := opts.(*StreamOptions); o.Streams != 0 {
			t.Fatalf("defaults from %q: %+v", raw, o)
		}
	}
}

func TestDecodeOptionsRejectsUnknownFields(t *testing.T) {
	_, err := DecodeOptions("stream", []byte(`{"streems": 16}`))
	if err == nil || !strings.Contains(err.Error(), "streems") {
		t.Fatalf("misspelled option not rejected: %v", err)
	}
	if _, err := DecodeOptions("stream", []byte(`{"streams": 16} {}`)); err == nil {
		t.Fatal("trailing data not rejected")
	}
	var unknown *UnknownComponentError
	if _, err := DecodeOptions("bogus", nil); !errors.As(err, &unknown) {
		t.Fatalf("unknown kind error = %v, want *UnknownComponentError", err)
	} else if !strings.Contains(err.Error(), "stream") {
		t.Fatalf("unknown-kind error does not carry the catalog: %v", err)
	}
}

func TestDecodeOptionsRunsFactoryValidate(t *testing.T) {
	cases := []struct {
		kind, raw, wantMsg string
	}{
		{"hwfilter", `{"bits": -1}`, "bits must be >= 0"},
		{"cdp", `{"compare_bits": 40}`, "compare_bits must be in [0, 32]"},
		{"stream", `{"streams": -2}`, "streams"},
	}
	for _, c := range cases {
		_, err := DecodeOptions(c.kind, []byte(c.raw))
		if err == nil || !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("DecodeOptions(%s, %s) = %v, want message containing %q",
				c.kind, c.raw, err, c.wantMsg)
		}
	}
}

// TestCanonicalOptionsNormalizes asserts the cache-key-facing property:
// formatting, field order, and omitted-vs-explicit defaults cannot split
// keys, while a semantic difference must.
func TestCanonicalOptionsNormalizes(t *testing.T) {
	same := [][2]string{
		{`{"streams": 32}`, `{ "streams":32 }`},
		{`{}`, `null`},
		{`{"compare_bits":0}`, ``},
	}
	kinds := []string{"stream", "stream", "cdp"}
	for i, pair := range same {
		a, err1 := CanonicalOptions(kinds[i], []byte(pair[0]))
		b, err2 := CanonicalOptions(kinds[i], []byte(pair[1]))
		if err1 != nil || err2 != nil {
			t.Fatalf("canonicalize %v: %v / %v", pair, err1, err2)
		}
		if string(a) != string(b) {
			t.Errorf("%s: %q and %q canonicalize differently: %s vs %s",
				kinds[i], pair[0], pair[1], a, b)
		}
	}
	a, _ := CanonicalOptions("stream", []byte(`{"streams": 16}`))
	b, _ := CanonicalOptions("stream", []byte(`{"streams": 32}`))
	if string(a) == string(b) {
		t.Fatal("semantically different options canonicalize identically")
	}
}
