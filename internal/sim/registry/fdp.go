package registry

import (
	"ldsprefetch/internal/baselines/fdp"
)

// FDPOptions parameterizes the feedback-directed prefetching baseline
// (Srinath et al.), which throttles each prefetcher on its own metrics.
type FDPOptions struct {
	// Thresholds overrides the FDP decision thresholds
	// (nil = fdp.DefaultThresholds).
	Thresholds *fdp.Thresholds `json:"thresholds,omitempty"`
}

type fdpController struct {
	ctl *fdp.Controller
	n   int
}

func (c *fdpController) Attach(inst Instance) {
	if inst.Throttleable != nil {
		c.ctl.Add(inst.Source, inst.Throttleable)
		c.n++
	}
}

func (c *fdpController) Install() {
	if c.n == 0 {
		return
	}
	c.ctl.Install()
}

func init() {
	RegisterPolicy(&Policy{
		Kind:           "fdp",
		Version:        1,
		ClaimsThrottle: true,
		NewOptions:     func() any { return new(FDPOptions) },
		Build: func(env *BuildEnv, opts any) Controller {
			th := fdp.DefaultThresholds()
			if o := opts.(*FDPOptions); o.Thresholds != nil {
				th = *o.Thresholds
			}
			return &fdpController{ctl: fdp.NewController(th, env.MS.Feedback())}
		},
	})
}
