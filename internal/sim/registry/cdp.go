package registry

import (
	"fmt"

	"ldsprefetch/internal/core"
	"ldsprefetch/internal/prefetch"
)

// CDPOptions parameterizes the content-directed prefetcher. The hint table
// that turns CDP into ECDP is spec-level input (BuildEnv.Hints), not an
// option: hints are profiled per benchmark, options describe hardware.
type CDPOptions struct {
	// CompareBits is the number of high-order address bits compared when
	// guessing whether a scanned value is a pointer (0 = the paper's 8).
	CompareBits int `json:"compare_bits,omitempty"`
	// AttributeRecursion attributes recursive prefetches to the root
	// pointer group (see core.CDPConfig; off reproduces the paper).
	AttributeRecursion bool `json:"attribute_recursion,omitempty"`
}

func init() {
	RegisterPrefetcher(&Prefetcher{
		Kind:          "cdp",
		Version:       1,
		Throttleable:  true,
		Switchable:    true,
		ConsumesHints: true,
		NewOptions:    func() any { return new(CDPOptions) },
		Validate: func(opts any) error {
			if o := opts.(*CDPOptions); o.CompareBits < 0 || o.CompareBits > 32 {
				return fmt.Errorf("compare_bits must be in [0, 32], got %d", o.CompareBits)
			}
			return nil
		},
		Build: func(env *BuildEnv, opts any) (Instance, error) {
			o := opts.(*CDPOptions)
			cfg := core.DefaultCDPConfig()
			cfg.BlockSize = env.BlockSize
			cfg.Hints = env.Hints
			if o.CompareBits != 0 {
				cfg.CompareBits = o.CompareBits
			}
			cfg.AttributeRecursion = o.AttributeRecursion
			cd := core.NewCDP(cfg, env.MS)
			return Instance{Prefetcher: cd, Source: prefetch.SrcCDP,
				Throttleable: cd, Switchable: cd}, nil
		},
	})
}
