package sim

import (
	"testing"

	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/profiling"
	"ldsprefetch/internal/workload"
)

// testParams keeps unit-test runs fast; data still exceeds the small caches
// used by shrunkMem.
func testParams() workload.Params { return workload.Params{Scale: 0.12, Seed: 5} }

func TestRunSingleUnknownBenchmark(t *testing.T) {
	if _, err := RunSingle("nosuch", testParams(), Baseline()); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestBaselineMetricsSane(t *testing.T) {
	r, err := RunSingle("mst", testParams(), Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("IPC = %v out of range", r.IPC)
	}
	if r.Cycles <= 0 || r.Retired <= 0 {
		t.Fatalf("cycles=%d retired=%d", r.Cycles, r.Retired)
	}
	if r.BPKI < 0 {
		t.Fatalf("BPKI = %v", r.BPKI)
	}
	if r.Benchmark != "mst" || r.Setup != "stream" {
		t.Fatalf("labels = %q/%q", r.Benchmark, r.Setup)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, _ := RunSingle("perlbench", testParams(), Baseline())
	b, _ := RunSingle("perlbench", testParams(), Baseline())
	if a.Cycles != b.Cycles || a.BusTransfers != b.BusTransfers {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/transfers",
			a.Cycles, a.BusTransfers, b.Cycles, b.BusTransfers)
	}
}

func TestCDPIssuesOnPointerBenchmark(t *testing.T) {
	r, err := RunSingle("health", testParams(), Setup{Stream: true, CDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Issued[prefetch.SrcCDP] == 0 {
		t.Fatal("CDP issued nothing on health")
	}
	if r.Accuracy[prefetch.SrcCDP] <= 0 || r.Accuracy[prefetch.SrcCDP] > 1 {
		t.Fatalf("CDP accuracy = %v", r.Accuracy[prefetch.SrcCDP])
	}
}

func TestCDPQuietOnStreamingBenchmark(t *testing.T) {
	r, err := RunSingle("libquantum", testParams(), Setup{Stream: true, CDP: true})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming blocks contain no pointer-looking values.
	if r.Issued[prefetch.SrcCDP] != 0 {
		t.Fatalf("CDP issued %d prefetches on libquantum", r.Issued[prefetch.SrcCDP])
	}
}

func TestIdealLDSNeverSlower(t *testing.T) {
	base, _ := RunSingle("health", testParams(), Baseline())
	ideal, _ := RunSingle("health", testParams(), Setup{Stream: true, IdealLDS: true})
	if ideal.IPC < base.IPC*0.99 {
		t.Fatalf("ideal LDS %.4f slower than baseline %.4f", ideal.IPC, base.IPC)
	}
}

func TestECDPUsesHints(t *testing.T) {
	g, _ := workload.Get("mst")
	prof := profiling.Collect(g.Build(testParams()), memsys.DefaultConfig(), cpu.DefaultConfig())
	hints := prof.Hints(0)
	if hints.Len() == 0 {
		t.Fatal("profile produced no hints")
	}
	p := workload.Params{Scale: 0.12, Seed: 6}
	cdp, _ := RunSingle("mst", p, Setup{Stream: true, CDP: true})
	ecdp, _ := RunSingle("mst", p, Setup{Stream: true, CDP: true, Hints: hints})
	if ecdp.Issued[prefetch.SrcCDP] >= cdp.Issued[prefetch.SrcCDP] {
		t.Fatalf("ECDP issued %d >= CDP %d: hints not filtering",
			ecdp.Issued[prefetch.SrcCDP], cdp.Issued[prefetch.SrcCDP])
	}
}

func TestProfilePGsCollects(t *testing.T) {
	r, _ := RunSingle("mst", testParams(), Setup{Stream: true, CDP: true, ProfilePGs: true})
	total := r.PGBeneficial + r.PGHarmful
	if total == 0 {
		t.Fatal("no pointer groups observed")
	}
	sum := 0
	for _, v := range r.PGHist {
		sum += v
	}
	if sum != total {
		t.Fatalf("histogram sum %d != classified PGs %d", sum, total)
	}
}

func TestBaselinePrefetchersAttach(t *testing.T) {
	for _, s := range []Setup{
		{Name: "markov", Stream: true, Markov: true},
		{Name: "ghb", GHB: true},
		{Name: "dbp", Stream: true, DBP: true},
		{Name: "fdp", Stream: true, CDP: true, FDP: true},
		{Name: "pab", Stream: true, CDP: true, PAB: true},
		{Name: "filter", Stream: true, CDP: true, HWFilter: true},
		{Name: "nopol", Stream: true, CDP: true, NoPollution: true},
	} {
		if _, err := RunSingle("mst", testParams(), s); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestInitialLevelRespected(t *testing.T) {
	lv := prefetch.VeryConservative
	cons, _ := RunSingle("health", testParams(), Setup{Stream: true, CDP: true, InitialLevel: &lv})
	aggr, _ := RunSingle("health", testParams(), Setup{Stream: true, CDP: true})
	// Depth 1 must issue fewer CDP prefetches than depth 4.
	if cons.Issued[prefetch.SrcCDP] >= aggr.Issued[prefetch.SrcCDP] {
		t.Fatalf("very-conservative issued %d >= aggressive %d",
			cons.Issued[prefetch.SrcCDP], aggr.Issued[prefetch.SrcCDP])
	}
}

func TestRunMulti(t *testing.T) {
	r, err := RunMulti([]string{"mst", "libquantum"}, testParams(), Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCore) != 2 || len(r.AloneIPC) != 2 {
		t.Fatalf("per-core results = %d", len(r.PerCore))
	}
	if r.WeightedSpeedup <= 0 || r.WeightedSpeedup > 2.01 {
		t.Fatalf("weighted speedup = %v out of [0,2]", r.WeightedSpeedup)
	}
	if r.HmeanSpeedup <= 0 || r.HmeanSpeedup > 1.01 {
		t.Fatalf("hmean speedup = %v (shared can't beat alone)", r.HmeanSpeedup)
	}
	if r.BusTransfers <= 0 || r.BusPKI <= 0 {
		t.Fatalf("bus stats = %d/%v", r.BusTransfers, r.BusPKI)
	}
	// Sharing must not make a core faster than running alone.
	for i, pc := range r.PerCore {
		if pc.IPC > r.AloneIPC[i]*1.01 {
			t.Fatalf("core %d shared IPC %v > alone %v", i, pc.IPC, r.AloneIPC[i])
		}
	}
}

func TestRunMultiUnknownBenchmark(t *testing.T) {
	if _, err := RunMulti([]string{"mst", "nosuch"}, testParams(), Baseline()); err == nil {
		t.Fatal("expected error")
	}
}

func TestContentionSlowsSharedCores(t *testing.T) {
	// Two memory-hungry benchmarks sharing a controller must each run
	// slower than alone.
	r, err := RunMulti([]string{"health", "health"}, testParams(), Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if r.WeightedSpeedup >= 2.0 {
		t.Fatalf("no contention visible: WS = %v", r.WeightedSpeedup)
	}
}
