package profiling

import (
	"ldsprefetch/internal/core"
	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/dram"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/stream"
	"ldsprefetch/internal/trace"
)

// CollectInforming implements the paper's second profiling alternative
// (Section 3, "Profiling Implementation"): instead of simulating the cache
// hierarchy offline with oracle observability, the target machine exposes
// *informing load operations* — each load reports whether it hit and whether
// the hit was due to a prefetch — and the profiling software reconstructs
// pointer-group usefulness itself:
//
//   - On every demand-missing load, the software scans the fetched block
//     image exactly as the content-directed prefetcher would (it knows the
//     pointer layout) and records, in a bounded software table, which block
//     each pointer group would have prefetched.
//   - When a later load reports "hit due to prefetch" on a recorded block,
//     the owning PG is credited useful.
//   - Entries that age out of the bounded table unconsumed are useless.
//
// No simulator-internal hooks (eviction callbacks, PG-tagged cache lines)
// are used — only information a real machine with informing loads provides.
func CollectInforming(tr *trace.Trace, mcfg memsys.Config, ccfg cpu.Config) *Profile {
	ctrl := dram.NewController(dram.DefaultConfig(1))
	ms := memsys.New(mcfg, tr.Mem, ctrl)
	shift := uint(0)
	for 1<<shift != mcfg.BlockSize {
		shift++
	}
	sp := stream.New(32, shift, ms)
	cdpCfg := core.DefaultCDPConfig()
	cdpCfg.BlockSize = mcfg.BlockSize
	cd := core.NewCDP(cdpCfg, ms)
	ms.Attach(sp)
	ms.Attach(cd)

	obs := newInformingObserver(mcfg.BlockSize)
	ms.Attach(obs)
	cpu.Run(ccfg, ms, tr)
	obs.drain()
	return &Profile{PGs: obs.pgs}
}

// informingObserver is the "profiling software": it watches the informing
// load stream and maintains the software candidate table.
type informingObserver struct {
	pgs        map[prefetch.PGKey]PGStats
	candidates map[uint32]prefetch.PGKey // predicted block -> owning PG
	ring       []uint32                  // FIFO aging of candidates
	pos        int
	blockWords int
	blockSize  uint32
	shift      uint
}

// informingTableSize bounds the software candidate table; entries aging out
// unconsumed count as useless, mirroring a block's finite cache residency.
const informingTableSize = 16384

func newInformingObserver(blockSize int) *informingObserver {
	return &informingObserver{
		pgs:        make(map[prefetch.PGKey]PGStats),
		candidates: make(map[uint32]prefetch.PGKey),
		ring:       make([]uint32, informingTableSize),
		blockWords: blockSize / 4,
		blockSize:  uint32(blockSize),
		shift: func() uint {
			s := uint(0)
			for 1<<s != blockSize {
				s++
			}
			return s
		}(),
	}
}

// Name implements memsys.Prefetcher (the observer issues nothing).
func (o *informingObserver) Name() string            { return "informing-profiler" }
func (o *informingObserver) Source() prefetch.Source { return prefetch.SrcDemand }

func (o *informingObserver) record(blk uint32, pg prefetch.PGKey) {
	if old := o.ring[o.pos]; old != 0 {
		if oldPG, ok := o.candidates[old]; ok {
			s := o.pgs[oldPG]
			s.Useless++
			o.pgs[oldPG] = s
			delete(o.candidates, old)
		}
	}
	o.ring[o.pos] = blk
	o.pos = (o.pos + 1) % len(o.ring)
	o.candidates[blk] = pg
}

// OnFill scans demand-fetched blocks just as the CDP hardware would,
// predicting which blocks each pointer group will cause to be prefetched.
func (o *informingObserver) OnFill(ev memsys.FillEvent) {
	if ev.Cause != prefetch.SrcDemand || !ev.TriggerIsLoad {
		return
	}
	anchor := ev.TriggerOff / 4
	top := ev.BlockAddr >> 24
	for w := 0; w < o.blockWords && w*4 < len(ev.Data); w++ {
		i := w * 4
		v := uint32(ev.Data[i]) | uint32(ev.Data[i+1])<<8 |
			uint32(ev.Data[i+2])<<16 | uint32(ev.Data[i+3])<<24
		if v>>24 != top {
			continue // fails the 8-bit compare-bits test
		}
		blk := v &^ (o.blockSize - 1)
		if blk == ev.BlockAddr {
			continue // self-pointing: never a distinct prefetch
		}
		if _, dup := o.candidates[blk]; dup {
			continue
		}
		o.record(blk, prefetch.MakePGKey(ev.TriggerPC, w-anchor))
	}
}

// OnAccess consumes the informing-load outcome stream.
func (o *informingObserver) OnAccess(ev memsys.AccessEvent) {
	if !ev.IsLoad || !ev.HitPrefetchSrc.IsPrefetch() {
		return
	}
	blk := (ev.Addr >> o.shift) << o.shift
	if pg, ok := o.candidates[blk]; ok {
		s := o.pgs[pg]
		s.Useful++
		o.pgs[pg] = s
		delete(o.candidates, blk)
	}
}

// drain resolves all still-pending candidates as useless (end of run).
func (o *informingObserver) drain() {
	//ldslint:ordered commutative Useless increments per PG; order-independent
	for _, pg := range o.candidates {
		s := o.pgs[pg]
		s.Useless++
		o.pgs[pg] = s
	}
	o.candidates = map[uint32]prefetch.PGKey{}
}
