package profiling

import (
	"testing"

	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/workload"
)

func collect(t *testing.T, bench string) *Profile {
	t.Helper()
	g, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Build(workload.Params{Scale: 0.12, Seed: 5})
	return Collect(tr, memsys.DefaultConfig(), cpu.DefaultConfig())
}

func TestCollectObservesPGs(t *testing.T) {
	p := collect(t, "mst")
	if len(p.PGs) == 0 {
		t.Fatal("no pointer groups observed")
	}
	b, h := p.BeneficialHarmful()
	if b+h == 0 {
		t.Fatal("no classified PGs")
	}
}

func TestMSTNextBeneficialDataHarmful(t *testing.T) {
	// The paper's Figure 5 example: in the hash-lookup loop, the chain
	// next pointer should profile clearly more useful than the data
	// pointers of the same node.
	p := collect(t, "mst")
	const keyPC = 0x5_0104
	next := p.PGs[prefetch.MakePGKey(keyPC, 3)] // next at +12 bytes
	d1 := p.PGs[prefetch.MakePGKey(keyPC, 1)]   // d1 at +4 bytes
	if next.Total() == 0 || d1.Total() == 0 {
		t.Skipf("PGs not exercised at this scale: next=%d d1=%d", next.Total(), d1.Total())
	}
	if next.Usefulness() <= d1.Usefulness() {
		t.Fatalf("next usefulness %.3f <= d1 %.3f; Figure 5 structure lost",
			next.Usefulness(), d1.Usefulness())
	}
}

func TestHintsThreshold(t *testing.T) {
	p := &Profile{PGs: map[prefetch.PGKey]PGStats{
		prefetch.MakePGKey(10, 2): {Useful: 9, Useless: 1},
		prefetch.MakePGKey(10, 3): {Useful: 1, Useless: 9},
		prefetch.MakePGKey(11, 1): {Useful: 6, Useless: 4},
	}}
	h := p.Hints(0)
	v, ok := h.Lookup(10)
	if !ok || !v.Allows(2) || v.Allows(3) {
		t.Fatalf("hints for pc 10 = %v", v)
	}
	if v2, ok := h.Lookup(11); !ok || !v2.Allows(1) {
		t.Fatal("pc 11 must be beneficial at 0.5")
	}
	// Stricter threshold drops the 60%-useful PG.
	h75 := p.Hints(0.75)
	if v2, _ := h75.Lookup(11); v2.Allows(1) {
		t.Fatal("pc 11 must be filtered at 0.75")
	}
}

func TestHintsRecordProfiledButEmptyLoads(t *testing.T) {
	p := &Profile{PGs: map[prefetch.PGKey]PGStats{
		prefetch.MakePGKey(10, 2): {Useful: 0, Useless: 5},
	}}
	h := p.Hints(0)
	v, ok := h.Lookup(10)
	if !ok {
		t.Fatal("profiled load must be present (with an empty vector)")
	}
	if !v.Empty() {
		t.Fatal("all-harmful load must have an empty vector")
	}
}

func TestCoarseHints(t *testing.T) {
	p := &Profile{PGs: map[prefetch.PGKey]PGStats{
		prefetch.MakePGKey(10, 2): {Useful: 9, Useless: 1},
		prefetch.MakePGKey(10, 3): {Useful: 8, Useless: 2},
		prefetch.MakePGKey(11, 1): {Useful: 1, Useless: 9},
	}}
	h := p.CoarseHints(0)
	v10, _ := h.Lookup(10)
	// Coarse control: ALL offsets enabled for a majority-useful load.
	for off := -16; off < 16; off++ {
		if !v10.Allows(off) {
			t.Fatalf("coarse hints must enable every offset; %d blocked", off)
		}
	}
	v11, ok := h.Lookup(11)
	if !ok || !v11.Empty() {
		t.Fatal("majority-useless load must be fully disabled")
	}
}

func TestHistogram(t *testing.T) {
	p := &Profile{PGs: map[prefetch.PGKey]PGStats{
		prefetch.MakePGKey(1, 0): {Useful: 0, Useless: 10}, // 0%
		prefetch.MakePGKey(1, 1): {Useful: 3, Useless: 7},  // 30%
		prefetch.MakePGKey(1, 2): {Useful: 6, Useless: 4},  // 60%
		prefetch.MakePGKey(1, 3): {Useful: 10, Useless: 0}, // 100%
	}}
	h := p.Histogram()
	if h != [4]int{1, 1, 1, 1} {
		t.Fatalf("histogram = %v", h)
	}
}

func TestTopPGsDeterministic(t *testing.T) {
	p := collect(t, "perlbench")
	a := p.TopPGs(10)
	b := p.TopPGs(10)
	if len(a) == 0 {
		t.Fatal("no top PGs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopPGs not deterministic")
		}
	}
	// Ordering by total, descending.
	for i := 1; i < len(a); i++ {
		if p.PGs[a[i]].Total() > p.PGs[a[i-1]].Total() {
			t.Fatal("TopPGs not sorted by activity")
		}
	}
}

func TestPGStatsUsefulness(t *testing.T) {
	if (PGStats{}).Usefulness() != 0 {
		t.Fatal("empty PG usefulness must be 0")
	}
	s := PGStats{Useful: 3, Useless: 1}
	if s.Usefulness() != 0.75 || s.Total() != 4 {
		t.Fatalf("stats = %+v", s)
	}
}
