package profiling

import (
	"testing"

	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/workload"
)

// Paper-shape tests: the profiling pass must classify each benchmark's
// signature pointer groups the way the paper's analysis predicts.

func profileBench(t *testing.T, bench string, scale float64) *Profile {
	t.Helper()
	g, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Build(workload.Params{Scale: scale, Seed: 1009})
	return Collect(tr, memsys.DefaultConfig(), cpu.DefaultConfig())
}

// usefulnessOf returns the PG's usefulness, or -1 if unobserved.
func usefulnessOf(p *Profile, pc uint32, wordOff int) float64 {
	s := p.PGs[prefetch.MakePGKey(pc, wordOff)]
	if s.Total() == 0 {
		return -1
	}
	return s.Usefulness()
}

func TestAmmpNextBeneficialNeighboursHarmful(t *testing.T) {
	// ammp: atom->next is always followed; each visit dereferences only 2
	// of the 8 neighbour pointers.
	p := profileBench(t, "ammp", 0.2)
	const coordPC = 0x10_010c             // the missing load anchors at atom+40
	next := usefulnessOf(p, coordPC, -10) // next@0 relative to coords@40
	if next < 0 {
		t.Skip("next PG unobserved at this scale")
	}
	if next < 0.5 {
		t.Errorf("ammp next PG usefulness %.3f, want beneficial (>0.5)", next)
	}
	// Neighbour slots (atom+4..36 → word offsets -9..-1): mostly harmful.
	harmful := 0
	seen := 0
	for off := -9; off <= -2; off++ {
		u := usefulnessOf(p, coordPC, off)
		if u < 0 {
			continue
		}
		seen++
		if u < 0.5 {
			harmful++
		}
	}
	if seen > 0 && harmful*2 < seen {
		t.Errorf("ammp neighbour PGs: only %d/%d harmful; expected majority", harmful, seen)
	}
}

func TestXalancTraversalPointersBestInClass(t *testing.T) {
	// xalancbmk: firstChild(+16) and nextSibling(+20) drive the DFS; name
	// (+4) and attrs (+24) are payload. The traversal PGs must profile
	// more useful than the payload PGs.
	p := profileBench(t, "xalancbmk", 0.2)
	const typePC = 0xc_0100
	child := usefulnessOf(p, typePC, 4) // firstChild at +16 bytes
	sib := usefulnessOf(p, typePC, 5)   // nextSibling at +20 bytes
	name := usefulnessOf(p, typePC, 1)  // name at +4 bytes
	if child < 0 || name < 0 {
		t.Skipf("PGs unobserved: child=%v name=%v", child, name)
	}
	if child <= name {
		t.Errorf("firstChild usefulness %.3f <= name %.3f", child, name)
	}
	if sib >= 0 && sib <= name {
		t.Errorf("nextSibling usefulness %.3f <= name %.3f", sib, name)
	}
}

func TestPerimeterKidsAllBeneficial(t *testing.T) {
	// perimeter: a full DFS follows every child pointer — the paper's
	// 83%-accuracy benchmark. All observed kid PGs must be beneficial.
	p := profileBench(t, "perimeter", 0.2)
	const colorPC = 0x8_0100
	seen := 0
	for off := 1; off <= 4; off++ { // kids at +4..+16 bytes
		u := usefulnessOf(p, colorPC, off)
		if u < 0 {
			continue
		}
		seen++
		if u < 0.5 {
			t.Errorf("perimeter kid PG at +%d: usefulness %.3f, want beneficial", off*4, u)
		}
	}
	if seen == 0 {
		t.Skip("no kid PGs observed")
	}
}

func TestHealthPatientChainBeneficial(t *testing.T) {
	// health: the patient next pointer drives the dominant list walks.
	p := profileBench(t, "health", 0.2)
	const patPC = 0x7_0108
	next := usefulnessOf(p, patPC, 2) // next at +8 from ts
	if next < 0 {
		t.Skip("patient next PG unobserved")
	}
	if next < 0.5 {
		t.Errorf("health patient next usefulness %.3f, want beneficial", next)
	}
}
