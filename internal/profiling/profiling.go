// Package profiling implements the paper's compiler profiling step
// (Section 3, "Profiling Implementation", first alternative): the program is
// run once against a simulation of the target cache hierarchy and
// prefetchers, every content-directed prefetch is attributed to its root
// pointer group PG(L, X), and each PG's usefulness — the fraction of its
// prefetches (including recursive ones) that were consumed by demand
// requests — is measured. Pointer groups whose usefulness exceeds 50% are
// classified beneficial; the result is emitted as the per-load hint bit
// vector table the hardware consumes (paper Figure 6).
package profiling

import (
	"sort"

	"ldsprefetch/internal/core"
	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/dram"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/stream"
	"ldsprefetch/internal/trace"
)

// PGStats is the measured outcome of one pointer group.
type PGStats struct {
	// Useful counts this PG's prefetches consumed by demand accesses.
	Useful int64
	// Useless counts this PG's prefetches evicted (or left) unconsumed.
	Useless int64
}

// Total returns the number of resolved prefetches of the PG.
func (s PGStats) Total() int64 { return s.Useful + s.Useless }

// Usefulness returns the useful fraction in [0, 1].
func (s PGStats) Usefulness() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Useful) / float64(t)
	}
	return 0
}

// Profile is the result of a profiling run.
type Profile struct {
	// PGs maps each observed pointer group to its statistics.
	PGs map[prefetch.PGKey]PGStats
}

// Collect runs the profiling simulation over tr: the baseline stream
// prefetcher plus an unfiltered CDP, with every prefetch outcome attributed
// to its root PG.
//
// The run consumes tr (stores are applied to its memory image); callers must
// build a fresh trace for any subsequent measurement run.
func Collect(tr *trace.Trace, mcfg memsys.Config, ccfg cpu.Config) *Profile {
	ctrl := dram.NewController(dram.DefaultConfig(1))
	ms := memsys.New(mcfg, tr.Mem, ctrl)
	shift := uint(0)
	for 1<<shift != mcfg.BlockSize {
		shift++
	}
	sp := stream.New(32, shift, ms)
	cdpCfg := core.DefaultCDPConfig()
	cdpCfg.BlockSize = mcfg.BlockSize
	cd := core.NewCDP(cdpCfg, ms)
	ms.Attach(sp)
	ms.Attach(cd)

	p := &Profile{PGs: make(map[prefetch.PGKey]PGStats)}
	ms.OnPGUseful = func(pg prefetch.PGKey) {
		s := p.PGs[pg]
		s.Useful++
		p.PGs[pg] = s
	}
	ms.OnPGUseless = func(pg prefetch.PGKey) {
		s := p.PGs[pg]
		s.Useless++
		p.PGs[pg] = s
	}
	cpu.Run(ccfg, ms, tr)
	return p
}

// BeneficialThreshold is the paper's classification boundary: PGs with more
// than 50% useful prefetches are beneficial.
const BeneficialThreshold = 0.5

// Hints builds the ECDP hint table: every PG whose usefulness strictly
// exceeds threshold gets its bit set in the owning load's hint vector.
// A non-positive threshold selects BeneficialThreshold.
func (p *Profile) Hints(threshold float64) *core.HintTable {
	if threshold <= 0 {
		threshold = BeneficialThreshold
	}
	t := core.NewHintTable()
	for _, pg := range p.sortedPGs() {
		s := p.PGs[pg]
		if s.Total() == 0 {
			continue
		}
		if s.Usefulness() > threshold {
			t.Mark(pg.PC(), pg.WordOff())
		} else if _, ok := t.Lookup(pg.PC()); !ok {
			// Record the load with an empty vector so ECDP knows it was
			// profiled (and prefetches nothing for it), rather than
			// treating it as unobserved.
			t.Set(pg.PC(), core.HintVec{})
		}
	}
	return t
}

// CoarseHints builds a GRP-style per-load all-or-nothing table (paper
// Section 7.1): a load either prefetches all pointers in blocks it fetches
// or none, decided by the aggregate usefulness of all its PGs. The paper
// found this coarse control nearly useless (0.4% gain), which Section 7.2's
// trigger-load filtering shares.
func (p *Profile) CoarseHints(threshold float64) *core.HintTable {
	if threshold <= 0 {
		threshold = BeneficialThreshold
	}
	type agg struct{ useful, useless int64 }
	byPC := map[uint32]agg{}
	var pcs []uint32
	for _, pg := range p.sortedPGs() {
		s := p.PGs[pg]
		a, seen := byPC[pg.PC()]
		if !seen {
			pcs = append(pcs, pg.PC())
		}
		a.useful += s.Useful
		a.useless += s.Useless
		byPC[pg.PC()] = a
	}
	t := core.NewHintTable()
	full := core.HintVec{Pos: ^uint32(0), Neg: ^uint32(0)}
	for _, pc := range pcs {
		a := byPC[pc]
		if a.useful+a.useless == 0 {
			continue
		}
		if float64(a.useful)/float64(a.useful+a.useless) > threshold {
			t.Set(pc, full)
		} else {
			t.Set(pc, core.HintVec{})
		}
	}
	return t
}

// Histogram buckets PG usefulness into the four bins of paper Figure 10:
// [0,25%), [25,50%), [50,75%), [75,100%].
func (p *Profile) Histogram() [4]int {
	var h [4]int
	//ldslint:ordered commutative bin counters; iteration order cannot change the histogram
	for _, s := range p.PGs {
		if s.Total() == 0 {
			continue
		}
		u := s.Usefulness()
		switch {
		case u < 0.25:
			h[0]++
		case u < 0.5:
			h[1]++
		case u < 0.75:
			h[2]++
		default:
			h[3]++
		}
	}
	return h
}

// BeneficialHarmful counts PGs on each side of the 50% boundary
// (paper Figure 4).
func (p *Profile) BeneficialHarmful() (beneficial, harmful int) {
	//ldslint:ordered commutative counters on each side of the boundary; order-independent
	for _, s := range p.PGs {
		if s.Total() == 0 {
			continue
		}
		if s.Usefulness() > BeneficialThreshold {
			beneficial++
		} else {
			harmful++
		}
	}
	return
}

// sortedPGs returns the profile's pointer-group keys in ascending order, so
// hint-table construction visits PGs deterministically.
func (p *Profile) sortedPGs() []prefetch.PGKey {
	keys := make([]prefetch.PGKey, 0, len(p.PGs))
	for k := range p.PGs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TopPGs returns the n most active pointer groups, most prefetches first
// (deterministic order), for reports and debugging.
func (p *Profile) TopPGs(n int) []prefetch.PGKey {
	keys := make([]prefetch.PGKey, 0, len(p.PGs))
	for k := range p.PGs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ti, tj := p.PGs[keys[i]].Total(), p.PGs[keys[j]].Total()
		if ti != tj {
			return ti > tj
		}
		return keys[i] < keys[j]
	})
	if n < len(keys) {
		keys = keys[:n]
	}
	return keys
}
