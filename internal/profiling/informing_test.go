package profiling

import (
	"testing"

	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/prefetch"
	"ldsprefetch/internal/workload"
)

func TestInformingObservesPGs(t *testing.T) {
	g, _ := workload.Get("mst")
	tr := g.Build(workload.Params{Scale: 0.12, Seed: 5})
	p := CollectInforming(tr, memsys.DefaultConfig(), cpu.DefaultConfig())
	if len(p.PGs) == 0 {
		t.Fatal("informing-loads profiling observed no PGs")
	}
	b, h := p.BeneficialHarmful()
	if b+h == 0 {
		t.Fatal("no classified PGs")
	}
}

func TestInformingAgreesOnFig5Structure(t *testing.T) {
	// Both profiling implementations must classify mst's chain-next PG as
	// more useful than the data-pointer PG (the paper's Figure 5).
	g, _ := workload.Get("mst")
	params := workload.Params{Scale: 0.15, Seed: 5}
	sim := Collect(g.Build(params), memsys.DefaultConfig(), cpu.DefaultConfig())
	inf := CollectInforming(g.Build(params), memsys.DefaultConfig(), cpu.DefaultConfig())
	const keyPC = 0x5_0104
	for _, tc := range []struct {
		name string
		p    *Profile
	}{{"simulated", sim}, {"informing", inf}} {
		name, p := tc.name, tc.p
		next := p.PGs[prefetch.MakePGKey(keyPC, 3)]
		d1 := p.PGs[prefetch.MakePGKey(keyPC, 1)]
		if next.Total() == 0 || d1.Total() == 0 {
			t.Fatalf("%s: PGs not observed (next=%d d1=%d)", name, next.Total(), d1.Total())
		}
		if next.Usefulness() <= d1.Usefulness() {
			t.Errorf("%s: next %.3f <= d1 %.3f", name, next.Usefulness(), d1.Usefulness())
		}
	}
}

func TestInformingObserverUnit(t *testing.T) {
	o := newInformingObserver(64)
	// A demand fill whose word 1 points at block 0x10004000.
	data := make([]byte, 64)
	v := uint32(0x1000_4010)
	data[4], data[5], data[6], data[7] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	o.OnFill(memsys.FillEvent{
		BlockAddr: 0x1000_0040, Data: data,
		Cause: prefetch.SrcDemand, TriggerPC: 42, TriggerOff: 0, TriggerIsLoad: true,
	})
	if len(o.candidates) != 1 {
		t.Fatalf("candidates = %d, want 1", len(o.candidates))
	}
	// An informing load reporting a prefetched hit on that block.
	o.OnAccess(memsys.AccessEvent{
		Addr: 0x1000_4010, IsLoad: true, L2Hit: true,
		HitPrefetchSrc: prefetch.SrcCDP,
	})
	pg := prefetch.MakePGKey(42, 1)
	if o.pgs[pg].Useful != 1 {
		t.Fatalf("PG stats = %+v, want 1 useful", o.pgs[pg])
	}
	// Drain marks nothing else (candidate consumed).
	o.drain()
	if o.pgs[pg].Useless != 0 {
		t.Fatalf("consumed candidate drained as useless: %+v", o.pgs[pg])
	}
}

func TestInformingObserverAgesOut(t *testing.T) {
	o := newInformingObserver(64)
	data := make([]byte, 64)
	v := uint32(0x1000_4000)
	data[0], data[1], data[2], data[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	o.OnFill(memsys.FillEvent{
		BlockAddr: 0x1000_0040, Data: data,
		Cause: prefetch.SrcDemand, TriggerPC: 7, TriggerOff: 0, TriggerIsLoad: true,
	})
	o.drain() // never consumed
	pg := prefetch.MakePGKey(7, 0)
	if o.pgs[pg].Useless != 1 {
		t.Fatalf("unconsumed candidate must be useless: %+v", o.pgs[pg])
	}
}

func TestInformingIgnoresNonDemandFills(t *testing.T) {
	o := newInformingObserver(64)
	data := make([]byte, 64)
	data[3] = 0x10
	o.OnFill(memsys.FillEvent{
		BlockAddr: 0x1000_0040, Data: data,
		Cause: prefetch.SrcCDP, Depth: 1, TriggerOff: -1,
	})
	if len(o.candidates) != 0 {
		t.Fatal("prefetch fills must not be scanned by the profiler")
	}
}

func TestInformingSelfPointerSkipped(t *testing.T) {
	o := newInformingObserver(64)
	data := make([]byte, 64)
	v := uint32(0x1000_0050) // points into the same block
	data[0], data[1], data[2], data[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	o.OnFill(memsys.FillEvent{
		BlockAddr: 0x1000_0040, Data: data,
		Cause: prefetch.SrcDemand, TriggerPC: 7, TriggerOff: 0, TriggerIsLoad: true,
	})
	if len(o.candidates) != 0 {
		t.Fatal("self-pointing values must be skipped")
	}
}
