// Package ldsprefetch reproduces "Techniques for Bandwidth-Efficient
// Prefetching of Linked Data Structures in Hybrid Prefetching Systems"
// (Ebrahimi, Mutlu, Patt — HPCA 2009) as a self-contained Go library: an
// execution-driven memory-hierarchy simulator, the paper's two contributions
// (compiler-guided content-directed prefetch filtering and coordinated
// prefetcher throttling), every baseline it compares against, synthetic
// proxies for its benchmark suite, and harnesses regenerating every table
// and figure of its evaluation.
//
// This file is the public façade: it re-exports the types a library user
// needs for the common flows. The full machinery lives in internal/ —
// internal/core holds the paper's contribution, internal/exp the experiment
// definitions; see DESIGN.md for the complete map.
//
// # Quick start
//
//	hints := ldsprefetch.ProfileHints("mst", ldsprefetch.TrainInput())
//	res, _ := ldsprefetch.Run("mst", ldsprefetch.RefInput(), ldsprefetch.Proposal(hints))
//	fmt.Printf("IPC %.3f, BPKI %.1f\n", res.IPC, res.BPKI)
package ldsprefetch

import (
	"ldsprefetch/internal/core"
	"ldsprefetch/internal/cpu"
	"ldsprefetch/internal/exp"
	"ldsprefetch/internal/memsys"
	"ldsprefetch/internal/profiling"
	"ldsprefetch/internal/sim"
	"ldsprefetch/internal/workload"
)

// Input selects a workload input set (size scale and seed).
type Input = workload.Params

// BenchScale is the workload input scale the repository's benchmark harness
// runs at (bench_test.go and cmd/ldsbench). It is deliberately reduced from
// the reference input's 1.0 so the full artifact set completes in minutes,
// while staying large enough that working sets exceed the 1 MB L2 and the
// measured code paths (MSHR waits, prefetch drops, feedback throttling) are
// all exercised. Benchmark trajectories are only comparable at the same
// scale; BENCH_PR3.json records this value in its metadata so drift is
// detectable.
const BenchScale = 0.15

// RefInput returns the reference (measurement) input.
func RefInput() Input { return workload.Ref() }

// TrainInput returns the profiling input (smaller scale, different seed).
func TrainInput() Input { return workload.Train() }

// Setup selects the system's prefetching configuration via the legacy
// boolean flags; see sim.Setup for all knobs. New code should prefer Spec.
type Setup = sim.Setup

// Spec is the declarative, serializable run configuration: an ordered list
// of registered component kinds (prefetchers and control policies) with
// typed options. See sim.Spec and internal/sim/registry.
type Spec = sim.Spec

// NewSpec builds a Spec from component kinds with default options, e.g.
// NewSpec("hybrid", "stream", "cdp", "throttle").
func NewSpec(name string, kinds ...string) Spec { return sim.NewSpec(name, kinds...) }

// RunSpec simulates one benchmark on a single-core system under a
// declarative Spec.
func RunSpec(bench string, in Input, sp Spec) (Result, error) {
	return sim.RunSingleSpec(bench, in, sp)
}

// Result carries a single-core run's metrics (IPC, BPKI, per-prefetcher
// accuracy and coverage, memory-system statistics).
type Result = sim.Result

// MultiResult carries a multi-core run's metrics (weighted and harmonic
// speedups, bus traffic).
type MultiResult = sim.MultiResult

// HintTable is the compiler-provided per-load hint bit-vector table
// consumed by ECDP.
type HintTable = core.HintTable

// Baseline returns the paper's baseline: an aggressive stream prefetcher.
func Baseline() Setup { return sim.Baseline() }

// OriginalCDP returns the stream + original content-directed prefetcher
// configuration that motivates the paper (Figure 2).
func OriginalCDP() Setup {
	return Setup{Name: "stream+cdp", Stream: true, CDP: true}
}

// Proposal returns the paper's full proposal: stream + ECDP with the given
// hints, under coordinated prefetcher throttling.
func Proposal(hints *HintTable) Setup {
	return Setup{Name: "stream+ecdp+thr", Stream: true, CDP: true,
		Hints: hints, Throttle: true}
}

// Benchmarks lists the paper's benchmark proxies in paper order.
func Benchmarks() []string { return workload.PaperNames() }

// ServerBenchmarks lists the beyond-the-paper server-class workload
// families (EXPERIMENTS.md "beyond the paper" chapter); they run through
// Run/RunMulti/ProfileHints like any benchmark.
func ServerBenchmarks() []string { return workload.ServerNames() }

// PointerIntensiveBenchmarks lists the paper's 15-benchmark main suite.
func PointerIntensiveBenchmarks() []string { return workload.PointerIntensiveNames() }

// Run simulates one benchmark on a single-core system.
func Run(bench string, in Input, s Setup) (Result, error) {
	return sim.RunSingle(bench, in, s)
}

// RunMulti simulates one benchmark per core on a shared memory system.
func RunMulti(benches []string, in Input, s Setup) (MultiResult, error) {
	return sim.RunMulti(benches, in, s)
}

// ProfileHints runs the paper's compiler profiling pass for bench on the
// given input and returns the beneficial-PG hint table.
func ProfileHints(bench string, in Input) *HintTable {
	tr, err := workload.BuildShared(bench, in)
	if err != nil {
		return core.NewHintTable()
	}
	prof := profiling.Collect(tr, memsys.DefaultConfig(), cpu.DefaultConfig())
	return prof.Hints(0)
}

// Experiment reproduces one of the paper's tables/figures by id (e.g.
// "fig7"; "all" for the complete evaluation) and returns the rendered
// reports. See DESIGN.md for the experiment index.
func Experiment(id string, in Input) ([]string, error) {
	ctx := exp.NewContext()
	ctx.Params = in
	ctx.TrainParams = Input{Scale: in.Scale * workload.Train().Scale, Seed: workload.Train().Seed}
	reports, err := exp.Run(ctx, id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.String()
	}
	return out, nil
}
